#include "src/core/quadratic_form.h"

#include <cmath>
#include <stdexcept>

#include "src/linalg/decompositions.h"

namespace bcert::core {

QuadraticForm::QuadraticForm(std::size_t n)
    : QuadraticForm(n, linalg::Vector(basis_size(n))) {}

QuadraticForm::QuadraticForm(std::size_t n, linalg::Vector coeffs)
    : n_(n), coeffs_(std::move(coeffs)) {
  if (n_ == 0) throw std::invalid_argument("QuadraticForm: n must be > 0");
  if (coeffs_.size() != basis_size(n_)) {
    throw std::invalid_argument("QuadraticForm: coefficient count");
  }
  basis_.reserve(coeffs_.size());
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i; j < n_; ++j) basis_.emplace_back(i, j);
  }
}

QuadraticForm QuadraticForm::from_matrix(const linalg::Matrix& p) {
  if (!p.is_symmetric(1e-9)) {
    throw std::invalid_argument("QuadraticForm::from_matrix: not symmetric");
  }
  const std::size_t n = p.rows();
  linalg::Vector c(basis_size(n));
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      c[k++] = (i == j) ? p(i, i) : 2.0 * p(i, j);
    }
  }
  return QuadraticForm(n, std::move(c));
}

std::size_t QuadraticForm::index_of(std::size_t i, std::size_t j) const {
  // Lexicographic (i, j), i <= j: offset of row i is Σ_{r<i}(n-r).
  return i * n_ - i * (i - 1) / 2 + (j - i);
}

double QuadraticForm::basis_value(std::size_t k,
                                  const linalg::Vector& x) const {
  const auto [i, j] = basis_[k];
  return x[i] * x[j];
}

linalg::Vector QuadraticForm::basis_gradient(std::size_t k,
                                             const linalg::Vector& x) const {
  const auto [i, j] = basis_[k];
  linalg::Vector g(n_);
  if (i == j) {
    g[i] = 2.0 * x[i];
  } else {
    g[i] = x[j];
    g[j] = x[i];
  }
  return g;
}

double QuadraticForm::value(const linalg::Vector& x) const {
  double acc = 0.0;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    acc += coeffs_[k] * basis_value(k, x);
  }
  return acc;
}

linalg::Vector QuadraticForm::gradient(const linalg::Vector& x) const {
  linalg::Vector g(n_);
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    if (coeffs_[k] == 0.0) continue;
    const auto [i, j] = basis_[k];
    if (i == j) {
      g[i] += 2.0 * coeffs_[k] * x[i];
    } else {
      g[i] += coeffs_[k] * x[j];
      g[j] += coeffs_[k] * x[i];
    }
  }
  return g;
}

linalg::Matrix QuadraticForm::matrix() const {
  linalg::Matrix p(n_, n_);
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    const auto [i, j] = basis_[k];
    if (i == j) {
      p(i, i) = coeffs_[k];
    } else {
      p(i, j) = p(j, i) = 0.5 * coeffs_[k];
    }
  }
  return p;
}

expr::ExprId QuadraticForm::to_expr(expr::ExprPool& pool) const {
  std::vector<expr::ExprId> terms;
  terms.reserve(coeffs_.size());
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    if (coeffs_[k] == 0.0) continue;
    const auto [i, j] = basis_[k];
    const expr::ExprId xi = pool.var(static_cast<std::int32_t>(i));
    const expr::ExprId xj = pool.var(static_cast<std::int32_t>(j));
    const expr::ExprId mono = (i == j) ? pool.sqr(xi) : pool.mul(xi, xj);
    terms.push_back(pool.mul(pool.constant(coeffs_[k]), mono));
  }
  return pool.sum(terms);
}

bool QuadraticForm::positive_definite() const {
  return linalg::CholeskyDecomposition(matrix()).success();
}

double QuadraticForm::min_level_containing(const Rect& rect) const {
  double level = 0.0;
  for (const linalg::Vector& v : rect.vertices()) {
    level = std::max(level, value(v));
  }
  return level;
}

std::optional<double> QuadraticForm::max_level_avoiding(
    const Halfspace& hs) const {
  const linalg::LuDecomposition lu(matrix());
  if (!lu.invertible()) return std::nullopt;
  // min over {x : aᵀx = b} of xᵀPx is b² / (aᵀ P⁻¹ a); here a = e_dim.
  linalg::Vector e(n_);
  e[hs.dim] = 1.0;
  const double pinv_dd = lu.solve(e)[hs.dim];
  if (pinv_dd <= 0.0) return std::nullopt;
  return hs.bound * hs.bound / pinv_dd;
}

std::optional<Rect> QuadraticForm::level_set_bounding_box(
    double level) const {
  if (level <= 0.0) return std::nullopt;
  const linalg::LuDecomposition lu(matrix());
  if (!lu.invertible()) return std::nullopt;
  Rect r;
  r.lo = linalg::Vector(n_);
  r.hi = linalg::Vector(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    linalg::Vector e(n_);
    e[i] = 1.0;
    const double pinv_ii = lu.solve(e)[i];
    if (pinv_ii <= 0.0) return std::nullopt;
    const double half = std::sqrt(level * pinv_ii);
    r.lo[i] = -half;
    r.hi[i] = half;
  }
  return r;
}

std::vector<linalg::Vector> QuadraticForm::boundary_points_2d(
    double level, std::size_t count) const {
  if (n_ != 2) {
    throw std::logic_error("boundary_points_2d: requires 2 dimensions");
  }
  std::vector<linalg::Vector> out;
  out.reserve(count);
  constexpr double kTwoPi = 6.283185307179586;
  for (std::size_t k = 0; k < count; ++k) {
    const double phi = kTwoPi * static_cast<double>(k) /
                       static_cast<double>(count);
    linalg::Vector dir{std::cos(phi), std::sin(phi)};
    const double q = value(dir);  // W(t·dir) = t² q
    if (q <= 0.0) continue;       // not PD along this ray
    const double t = std::sqrt(level / q);
    out.push_back(dir * t);
  }
  return out;
}

}  // namespace bcert::core
