#include "src/nn/activation.h"

#include <cmath>
#include <stdexcept>

namespace bcert::nn {

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kRelu: return "relu";
    case Activation::kLinear: return "linear";
  }
  return "?";
}

Activation activation_from_name(const std::string& name) {
  if (name == "tanh" || name == "tansig") return Activation::kTanh;
  if (name == "sigmoid" || name == "logsig") return Activation::kSigmoid;
  if (name == "relu") return Activation::kRelu;
  if (name == "linear" || name == "purelin") return Activation::kLinear;
  throw std::invalid_argument("unknown activation: " + name);
}

double apply(Activation a, double v) {
  switch (a) {
    case Activation::kTanh: return std::tanh(v);
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-v));
    case Activation::kRelu: return v > 0.0 ? v : 0.0;
    case Activation::kLinear: return v;
  }
  return v;
}

expr::ExprId apply(Activation a, expr::ExprPool& pool, expr::ExprId v) {
  switch (a) {
    case Activation::kTanh: return pool.tanh(v);
    case Activation::kSigmoid: return pool.sigmoid(v);
    case Activation::kRelu: return pool.relu(v);
    case Activation::kLinear: return v;
  }
  return v;
}

}  // namespace bcert::nn
