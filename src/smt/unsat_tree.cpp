#include "src/smt/unsat_tree.h"

#include <algorithm>
#include <unordered_map>

namespace bcert::smt {

using expr::ExprId;
using expr::Node;
using expr::Op;
using interval::Box;
using interval::Interval;

std::size_t UnsatTree::split_count() const {
  std::size_t count = 0;
  for (const Node& n : nodes) count += n.left != kNoNode;
  return count;
}

void UnsatTree::replay(const Box& box, std::vector<Box>& out) const {
  walk(
      box, 0,
      [](const Node&, int) { return std::pair<int, int>{0, 0}; },
      [&out](Box&& leaf, int) { out.push_back(std::move(leaf)); });
}

namespace {

inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/// Post-order DAG hash ignoring constant values (see header).
std::uint64_t shape_hash(const expr::ExprPool& pool, ExprId root,
                         std::unordered_map<ExprId, std::uint64_t>& memo) {
  std::vector<std::pair<ExprId, bool>> stack{{root, false}};
  while (!stack.empty()) {
    const auto [id, expanded] = stack.back();
    stack.pop_back();
    if (memo.count(id) != 0) continue;
    const Node& n = pool.node(id);
    if (!expanded) {
      stack.emplace_back(id, true);
      if (n.a != expr::kNoExpr) stack.emplace_back(n.a, false);
      if (n.b != expr::kNoExpr) stack.emplace_back(n.b, false);
      continue;
    }
    std::uint64_t h = 0xc0ffee ^ (static_cast<std::uint64_t>(n.op) * 31u);
    if (n.op == Op::kVar || n.op == Op::kPow) {
      h = hash_combine(h, static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(n.index)));
    }
    // kConst contributes only its presence, never its value: successive
    // candidates' W coefficients must hash alike.
    const bool commutative = n.op == Op::kAdd || n.op == Op::kMul ||
                             n.op == Op::kMin || n.op == Op::kMax;
    if (commutative && n.b != expr::kNoExpr) {
      // ExprPool canonicalizes commutative operands by ExprId, and fresh
      // constants shift ids between candidate iterations — hash the
      // children symmetrically so the operand order cannot matter.
      const std::uint64_t ha = memo.at(n.a), hb = memo.at(n.b);
      h = hash_combine(h, ha + hb);
      h = hash_combine(h, ha ^ hb);
    } else {
      if (n.a != expr::kNoExpr) h = hash_combine(h, memo.at(n.a));
      if (n.b != expr::kNoExpr) h = hash_combine(h, memo.at(n.b) + 1);
    }
    memo.emplace(id, h);
  }
  return memo.at(root);
}

}  // namespace

std::uint64_t structural_signature(const expr::ExprPool& pool,
                                   const Conjunction& c) {
  std::unordered_map<ExprId, std::uint64_t> memo;
  std::uint64_t h = 0x5eed;
  for (const Constraint& k : c.constraints) {
    h = hash_combine(h, shape_hash(pool, k.lhs, memo));
    h = hash_combine(h, static_cast<std::uint64_t>(k.rel));
  }
  return h;
}

std::shared_ptr<const UnsatTree> UnsatTreeCache::find(
    const expr::ExprPool& pool, const Conjunction& c,
    const interval::Box& box) {
  return find(pool, structural_signature(pool, c), box);
}

std::shared_ptr<const UnsatTree> UnsatTreeCache::find(
    const expr::ExprPool& pool, std::uint64_t signature,
    const interval::Box& box) {
  auto tree = trees_.get({&pool, signature});
  if (tree == nullptr) return nullptr;
  if (!(tree->root_box == box)) {
    // Stale seed (the search box moved — e.g. a level-set bounding box
    // recomputed for a new candidate): silently fall back to cold.
    stale_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  return tree;
}

std::shared_ptr<const UnsatTree> UnsatTreeCache::find(
    const expr::ExprPool& pool, std::uint64_t signature,
    const Sig128& content, const interval::Box& box) {
  // A live hit always wins: in-process seeding must evolve exactly as it
  // would without any imported state.
  if (auto tree = trees_.get({&pool, signature})) {
    if (tree->root_box == box) return tree;
    stale_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Content-exact warm probe. The entry is left in place — after the
  // adopted replay completes UNSAT, publish re-stores an isomorphic tree
  // under the same content key anyway.
  std::shared_ptr<const UnsatTree> tree;
  {
    std::lock_guard<std::mutex> lock(warm_mutex_);
    const auto it = warm_.find(content);
    if (it == warm_.end()) return nullptr;
    tree = it->second;
  }
  if (!(tree->root_box == box)) {
    stale_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  warm_restores_.fetch_add(1, std::memory_order_relaxed);
  return tree;
}

std::vector<UnsatTreeCache::WarmEntry> UnsatTreeCache::export_entries() const {
  std::vector<WarmEntry> out;
  std::lock_guard<std::mutex> lock(warm_mutex_);
  out.reserve(warm_.size());
  for (const auto& [content, tree] : warm_) out.push_back({content, tree});
  return out;
}

void UnsatTreeCache::import_entries(std::vector<WarmEntry> entries) {
  std::lock_guard<std::mutex> lock(warm_mutex_);
  for (WarmEntry& e : entries) {
    if (e.tree != nullptr) warm_insert(e.content, std::move(e.tree));
  }
}

// Requires warm_mutex_ held.
void UnsatTreeCache::warm_insert(const Sig128& content,
                                 std::shared_ptr<const UnsatTree> tree) {
  auto [it, inserted] = warm_.insert_or_assign(content, std::move(tree));
  (void)it;
  if (inserted) warm_order_.push_back(content);
  // Lazy FIFO eviction: queue entries whose key was already evicted (or
  // re-inserted later) are skipped, so the queue can momentarily exceed
  // the map but both stay bounded.
  while (warm_.size() > kMaxWarmEntries && !warm_order_.empty()) {
    const Sig128 victim = warm_order_.front();
    warm_order_.pop_front();
    warm_.erase(victim);
  }
}

void UnsatTreeCache::store(const expr::ExprPool& pool, const Conjunction& c,
                           std::shared_ptr<const UnsatTree> tree) {
  store(pool, structural_signature(pool, c), std::move(tree));
}

void UnsatTreeCache::store(const expr::ExprPool& pool,
                           std::uint64_t signature,
                           std::shared_ptr<const UnsatTree> tree) {
  trees_.put({&pool, signature}, std::move(tree), /*replace=*/true);
}

void UnsatTreeCache::store(const expr::ExprPool& pool,
                           std::uint64_t signature, const Sig128& content,
                           std::shared_ptr<const UnsatTree> tree) {
  {
    std::lock_guard<std::mutex> lock(warm_mutex_);
    warm_insert(content, tree);
  }
  trees_.put({&pool, signature}, std::move(tree), /*replace=*/true);
}

}  // namespace bcert::smt
