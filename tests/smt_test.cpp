// Tests for the HC4 contractor and the δ-SAT ICP solver.
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "src/expr/expr.h"
#include "src/smt/hc4.h"
#include "src/smt/icp_solver.h"

namespace bcert::smt {
namespace {

using expr::ExprId;
using expr::ExprPool;
using interval::Box;
using interval::Interval;
using linalg::Vector;

TEST(Constraint, ViolationAndSatisfaction) {
  Constraint le{0, Rel::kLe};
  EXPECT_TRUE(le.certainly_violated(Interval(0.5, 1.0)));
  EXPECT_FALSE(le.certainly_violated(Interval(-0.5, 1.0)));
  EXPECT_TRUE(le.certainly_satisfied(Interval(-1.0, 0.0)));

  Constraint lt{0, Rel::kLt};
  EXPECT_TRUE(lt.certainly_violated(Interval(0.0, 1.0)));
  EXPECT_FALSE(lt.certainly_satisfied(Interval(-1.0, 0.0)));
  EXPECT_TRUE(lt.certainly_satisfied(Interval(-1.0, -0.1)));

  Constraint eq{0, Rel::kEq};
  EXPECT_TRUE(eq.certainly_violated(Interval(0.1, 1.0)));
  EXPECT_FALSE(eq.certainly_violated(Interval(-0.1, 0.1)));
}

TEST(Dnf, ConjoinCrossProduct) {
  Conjunction a, b, c, d;
  a.add(1, Rel::kLe);
  b.add(2, Rel::kGe);
  c.add(3, Rel::kLt);
  d.add(4, Rel::kGt);
  Dnf left({a, b}), right({c, d});
  Dnf prod = left.conjoin(right);
  ASSERT_EQ(prod.disjuncts.size(), 4u);
  EXPECT_EQ(prod.disjuncts[0].size(), 2u);
}

TEST(Hc4, ContractsLinearConstraint) {
  ExprPool p;
  // x + y - 1 <= 0 over [0,2]x[0,2]: no single-pass narrowing of x alone
  // is possible below y's contribution, but x <= 1 - y.lo = 1... wait:
  // x in [0,2], y in [0,2], x <= 1 - y in [-1,1] -> x in [0,1].
  const ExprId e =
      p.sub(p.add(p.var(0), p.var(1)), p.one());
  Conjunction c;
  c.add(e, Rel::kLe);
  Hc4Contractor hc4(p, c);
  Box box = Box::from_bounds({{0.0, 2.0}, {0.0, 2.0}});
  const ContractResult r = hc4.contract(box);
  EXPECT_EQ(r, ContractResult::kContracted);
  EXPECT_NEAR(box[0].hi(), 1.0, 1e-9);
  EXPECT_NEAR(box[1].hi(), 1.0, 1e-9);
}

TEST(Hc4, ProvesEmptyOnInfeasibleBox) {
  ExprPool p;
  // x² + 1 <= 0 is infeasible everywhere.
  const ExprId e = p.add(p.sqr(p.var(0)), p.one());
  Conjunction c;
  c.add(e, Rel::kLe);
  Hc4Contractor hc4(p, c);
  Box box = Box::from_bounds({{-10.0, 10.0}});
  EXPECT_EQ(hc4.contract(box), ContractResult::kEmpty);
}

TEST(Hc4, ContractsThroughTanh) {
  ExprPool p;
  // tanh(x) - 0.5 >= 0  =>  x >= atanh(0.5) ≈ 0.5493.
  const ExprId e = p.sub(p.tanh(p.var(0)), p.constant(0.5));
  Conjunction c;
  c.add(e, Rel::kGe);
  Hc4Contractor hc4(p, c);
  Box box = Box::from_bounds({{-5.0, 5.0}});
  hc4.contract_fixpoint(box);
  EXPECT_GT(box[0].lo(), 0.54);
  EXPECT_LT(box[0].lo(), 0.56);
}

TEST(Hc4, ContractsThroughSinPrincipalBranch) {
  ExprPool p;
  // sin(x) >= 0.5 with x in [-1.5, 1.5] (inside principal branch):
  // x >= asin(0.5) ≈ 0.5236.
  const ExprId e = p.sub(p.sin(p.var(0)), p.constant(0.5));
  Conjunction c;
  c.add(e, Rel::kGe);
  Hc4Contractor hc4(p, c);
  Box box = Box::from_bounds({{-1.5, 1.5}});
  hc4.contract_fixpoint(box);
  EXPECT_GT(box[0].lo(), 0.51);
  EXPECT_LT(box[0].lo(), 0.53);
}

TEST(Hc4, BackwardThroughDivision) {
  ExprPool p;
  // x / y = 2 with x in [4, 4] -> y contracts to 2.
  Conjunction c;
  c.add(p.sub(p.div(p.var(0), p.var(1)), p.constant(2.0)), Rel::kEq);
  Hc4Contractor hc4(p, c);
  Box box = Box::from_bounds({{4.0, 4.0}, {0.5, 10.0}});
  hc4.contract_fixpoint(box);
  EXPECT_NEAR(box[1].lo(), 2.0, 1e-6);
  EXPECT_NEAR(box[1].hi(), 2.0, 1e-6);
}

TEST(Hc4, BackwardThroughAbs) {
  ExprPool p;
  // |x| <= 1 over [-10, 10] -> x in [-1, 1].
  Conjunction c;
  c.add(p.sub(p.abs(p.var(0)), p.one()), Rel::kLe);
  Hc4Contractor hc4(p, c);
  Box box = Box::from_bounds({{-10.0, 10.0}});
  hc4.contract_fixpoint(box);
  EXPECT_NEAR(box[0].lo(), -1.0, 1e-9);
  EXPECT_NEAR(box[0].hi(), 1.0, 1e-9);
}

TEST(Hc4, BackwardThroughEvenPow) {
  ExprPool p;
  // x^4 <= 16 -> x in [-2, 2].
  Conjunction c;
  c.add(p.sub(p.pow(p.var(0), 4), p.constant(16.0)), Rel::kLe);
  Hc4Contractor hc4(p, c);
  Box box = Box::from_bounds({{-8.0, 8.0}});
  hc4.contract_fixpoint(box);
  EXPECT_NEAR(box[0].lo(), -2.0, 1e-6);
  EXPECT_NEAR(box[0].hi(), 2.0, 1e-6);
}

TEST(Hc4, BackwardThroughOddPow) {
  ExprPool p;
  // x^3 >= 8 -> x >= 2.
  Conjunction c;
  c.add(p.sub(p.constant(8.0), p.pow(p.var(0), 3)), Rel::kLe);
  Hc4Contractor hc4(p, c);
  Box box = Box::from_bounds({{-10.0, 10.0}});
  hc4.contract_fixpoint(box);
  EXPECT_NEAR(box[0].lo(), 2.0, 1e-6);
}

TEST(Hc4, BackwardThroughMinMax) {
  ExprPool p;
  // min(x, y) >= 1 -> both >= 1; max(x, y) <= 3 -> both <= 3.
  Conjunction c;
  c.add(p.sub(p.one(), p.min(p.var(0), p.var(1))), Rel::kLe);
  c.add(p.sub(p.max(p.var(0), p.var(1)), p.constant(3.0)), Rel::kLe);
  Hc4Contractor hc4(p, c);
  Box box = Box::from_bounds({{-10.0, 10.0}, {-10.0, 10.0}});
  hc4.contract_fixpoint(box);
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(box[i].lo(), 1.0, 1e-9);
    EXPECT_NEAR(box[i].hi(), 3.0, 1e-9);
  }
}

TEST(Hc4, BackwardThroughExpLog) {
  ExprPool p;
  // exp(x) <= e^2 -> x <= 2; log(y) >= 0 -> y >= 1.
  Conjunction c;
  c.add(p.sub(p.exp(p.var(0)), p.constant(std::exp(2.0))), Rel::kLe);
  c.add(p.neg(p.log(p.var(1))), Rel::kLe);
  Hc4Contractor hc4(p, c);
  Box box = Box::from_bounds({{-10.0, 10.0}, {0.1, 10.0}});
  hc4.contract_fixpoint(box);
  EXPECT_NEAR(box[0].hi(), 2.0, 1e-6);
  EXPECT_NEAR(box[1].lo(), 1.0, 1e-6);
}

TEST(Hc4, SharedSubtermRefinesOnce) {
  ExprPool p;
  // t = x²; t <= 4 and t >= 1 -> |x| in [1, 2] (hull [-2, 2]).
  const ExprId t = p.sqr(p.var(0));
  Conjunction c;
  c.add(p.sub(t, p.constant(4.0)), Rel::kLe);
  c.add(p.sub(p.one(), t), Rel::kLe);
  Hc4Contractor hc4(p, c);
  Box box = Box::from_bounds({{0.0, 10.0}});
  hc4.contract_fixpoint(box);
  EXPECT_NEAR(box[0].lo(), 1.0, 1e-6);
  EXPECT_NEAR(box[0].hi(), 2.0, 1e-6);
}

TEST(Hc4, NeverDiscardsSolutions) {
  // Property: contraction keeps all points that satisfy the constraints.
  ExprPool p;
  const ExprId x = p.var(0), y = p.var(1);
  const ExprId e1 = p.sub(p.add(p.sqr(x), p.sqr(y)), p.one());  // ≤ 0
  const ExprId e2 = p.sub(p.mul(x, y), p.constant(0.1));        // ≥ 0
  Conjunction c;
  c.add(e1, Rel::kLe);
  c.add(e2, Rel::kGe);
  Hc4Contractor hc4(p, c);
  Box box = Box::from_bounds({{-2.0, 2.0}, {-2.0, 2.0}});
  Box contracted = box;
  hc4.contract_fixpoint(contracted);
  std::mt19937 rng(9);
  std::uniform_real_distribution<double> d(-2.0, 2.0);
  for (int i = 0; i < 3000; ++i) {
    const Vector pt{d(rng), d(rng)};
    const bool sat = (pt[0] * pt[0] + pt[1] * pt[1] <= 1.0) &&
                     (pt[0] * pt[1] >= 0.1);
    if (sat) {
      ASSERT_TRUE(contracted.contains(pt))
          << "lost solution (" << pt[0] << "," << pt[1] << ")";
    }
  }
}

TEST(Icp, UnsatSimplePolynomial) {
  ExprPool p;
  // x² + y² <= -1 : UNSAT.
  const ExprId e =
      p.add(p.add(p.sqr(p.var(0)), p.sqr(p.var(1))), p.one());
  Conjunction c;
  c.add(e, Rel::kLe);
  IcpSolver solver(p);
  const auto r = solver.solve(c, Box::from_bounds({{-5, 5}, {-5, 5}}));
  EXPECT_EQ(r.verdict, SatResult::kUnsat);
}

TEST(Icp, SatWithTrueWitness) {
  ExprPool p;
  // x² <= 1 over [-3, 3] : any |x| <= 1 works; expect real SAT.
  const ExprId e = p.sub(p.sqr(p.var(0)), p.one());
  Conjunction c;
  c.add(e, Rel::kLe);
  IcpSolver solver(p);
  const auto r = solver.solve(c, Box::from_bounds({{-3.0, 3.0}}));
  ASSERT_TRUE(r.is_sat());
  const Vector w = r.witness_point();
  EXPECT_LE(w[0] * w[0], 1.0 + 1e-6);
}

TEST(Icp, CircleLineIntersection) {
  ExprPool p;
  // x² + y² = 4 and y = x : solutions at ±(√2, √2).
  const ExprId x = p.var(0), y = p.var(1);
  Conjunction c;
  c.add(p.sub(p.add(p.sqr(x), p.sqr(y)), p.constant(4.0)), Rel::kEq);
  c.add(p.sub(y, x), Rel::kEq);
  IcpSolver solver(p);
  solver.config().delta = 1e-6;
  const auto r = solver.solve(c, Box::from_bounds({{0.0, 5.0}, {0.0, 5.0}}));
  ASSERT_TRUE(r.is_sat());
  const Vector w = r.witness_point();
  EXPECT_NEAR(w[0], std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(w[1], std::sqrt(2.0), 1e-3);
}

TEST(Icp, UnsatTranscendental) {
  ExprPool p;
  // sin(x) + 2 <= 0 : UNSAT (sin >= -1).
  const ExprId e = p.add(p.sin(p.var(0)), p.constant(2.0));
  Conjunction c;
  c.add(e, Rel::kLe);
  IcpSolver solver(p);
  const auto r = solver.solve(c, Box::from_bounds({{-100.0, 100.0}}));
  EXPECT_EQ(r.verdict, SatResult::kUnsat);
}

TEST(Icp, TightUnsatNearBoundary) {
  ExprPool p;
  // tanh(x) > 1 - 1e-9 over x in [-10, 10]: requires x > atanh(1-1e-9)
  // ≈ 10.7 — outside the box, so UNSAT.
  const ExprId e =
      p.sub(p.tanh(p.var(0)), p.constant(1.0 - 1e-9));
  Conjunction c;
  c.add(e, Rel::kGt);
  IcpSolver solver(p);
  const auto r = solver.solve(c, Box::from_bounds({{-10.0, 10.0}}));
  EXPECT_EQ(r.verdict, SatResult::kUnsat);
}

TEST(Icp, DeltaSatReportedNearEquality) {
  ExprPool p;
  // x² = 2 : no certain-SAT box exists (equality), expect δ-SAT near √2.
  const ExprId e = p.sub(p.sqr(p.var(0)), p.constant(2.0));
  Conjunction c;
  c.add(e, Rel::kEq);
  IcpSolver solver(p);
  solver.config().delta = 1e-9;
  const auto r = solver.solve(c, Box::from_bounds({{0.0, 10.0}}));
  ASSERT_EQ(r.verdict, SatResult::kDeltaSat);
  EXPECT_NEAR(r.witness_point()[0], std::sqrt(2.0), 1e-6);
}

TEST(Icp, EmptyConjunctionIsSat) {
  ExprPool p;
  IcpSolver solver(p);
  const auto r = solver.solve(Conjunction{}, Box::from_bounds({{0.0, 1.0}}));
  EXPECT_EQ(r.verdict, SatResult::kSat);
}

TEST(Icp, DnfShortCircuitsOnSat) {
  ExprPool p;
  Conjunction unsat_c, sat_c;
  unsat_c.add(p.add(p.sqr(p.var(0)), p.one()), Rel::kLe);   // x²+1 <= 0
  sat_c.add(p.sub(p.var(0), p.constant(0.5)), Rel::kEq);    // x = 0.5
  Dnf q({unsat_c, sat_c});
  IcpSolver solver(p);
  const auto r = solver.solve(q, Box::from_bounds({{0.0, 1.0}}));
  ASSERT_TRUE(r.is_sat());
  EXPECT_NEAR(r.witness_point()[0], 0.5, 1e-2);
}

TEST(Icp, DnfAllUnsat) {
  ExprPool p;
  Conjunction c1, c2;
  c1.add(p.add(p.sqr(p.var(0)), p.one()), Rel::kLe);
  c2.add(p.add(p.exp(p.var(0)), p.one()), Rel::kLe);  // e^x + 1 <= 0
  Dnf q({c1, c2});
  IcpSolver solver(p);
  const auto r = solver.solve(q, Box::from_bounds({{-5.0, 5.0}}));
  EXPECT_EQ(r.verdict, SatResult::kUnsat);
}

TEST(Icp, BudgetExhaustionReportsUnknown) {
  ExprPool p;
  // Hard equality with a tiny box budget.
  const ExprId x = p.var(0), y = p.var(1);
  Conjunction c;
  c.add(p.sub(p.sin(p.mul(p.constant(20.0), x)), y), Rel::kEq);
  c.add(p.sub(p.sqr(y), p.constant(0.25)), Rel::kEq);
  IcpSolver solver(p);
  solver.config().max_boxes = 3;
  solver.config().delta = 1e-12;
  const auto r =
      solver.solve(c, Box::from_bounds({{-10.0, 10.0}, {-10.0, 10.0}}));
  EXPECT_EQ(r.verdict, SatResult::kUnknown);
}

// Property: for random quadratic constraints, an UNSAT verdict is never
// contradicted by dense sampling, and a SAT verdict's witness satisfies
// the constraint.
class IcpSoundness : public ::testing::TestWithParam<int> {};

TEST_P(IcpSoundness, VerdictConsistentWithSampling) {
  std::mt19937 rng(GetParam() * 131 + 7);
  std::uniform_real_distribution<double> coeff(-2.0, 2.0);
  ExprPool p;
  const ExprId x = p.var(0), y = p.var(1);
  const double a = coeff(rng), b = coeff(rng), cc = coeff(rng),
               d0 = coeff(rng);
  // q(x,y) = a x² + b y² + c xy + d <= 0 over [-1,1]².
  const ExprId q = p.sum({p.mul(p.constant(a), p.sqr(x)),
                          p.mul(p.constant(b), p.sqr(y)),
                          p.mul(p.constant(cc), p.mul(x, y)),
                          p.constant(d0)});
  Conjunction c;
  c.add(q, Rel::kLe);
  IcpSolver solver(p);
  const Box box = Box::from_bounds({{-1.0, 1.0}, {-1.0, 1.0}});
  const auto r = solver.solve(c, box);
  auto qv = [&](double vx, double vy) {
    return a * vx * vx + b * vy * vy + cc * vx * vy + d0;
  };
  if (r.verdict == SatResult::kUnsat) {
    std::uniform_real_distribution<double> s(-1.0, 1.0);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_GT(qv(s(rng), s(rng)), 0.0) << "UNSAT contradicted by sample";
    }
  } else if (r.verdict == SatResult::kSat) {
    const Vector w = r.witness_point();
    EXPECT_LE(qv(w[0], w[1]), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcpSoundness, ::testing::Range(0, 20));

}  // namespace
}  // namespace bcert::smt
