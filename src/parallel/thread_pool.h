#pragma once
/// \file thread_pool.h
/// \brief Work-stealing thread pool + cooperative cancellation.
///
/// The two hot paths of the library — the branch-and-prune ICP solver and
/// the simulation batches behind CMA-ES training / falsification — share
/// this pool. Design points:
///
///  * **Work stealing.** Each worker owns a deque guarded by its own
///    mutex. Owners pop from the front (FIFO for externally submitted
///    tasks, which keeps `submit` ordering intuitive); idle workers steal
///    from the back of a victim's deque. Contention is limited to one
///    brief lock per push/pop, never a global queue lock on the hot path.
///  * **Helping wait.** Blocking operations (`run_on_workers`,
///    `parallel_for`) make the calling thread execute tasks too, so they
///    are safe to call from inside a worker (nested parallelism cannot
///    deadlock) and degrade gracefully on a 1-core machine.
///  * **Cancellation.** `CancellationToken` is a shared atomic flag that
///    long-running tasks poll; the ICP solver uses it to short-circuit
///    every worker the moment one of them finds a SAT box.
///  * **Determinism contract.** The pool never reorders *results*: all
///    deterministic callers (CMA-ES, falsifier) index their output slots
///    up front, so answers are byte-identical for any pool size.
///
/// Thread count resolution: `core::RuntimeConfig::active().threads` when
/// positive (the typed home of the `BCERT_THREADS` environment knob),
/// otherwise `std::thread::hardware_concurrency()`.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bcert::parallel {

/// Cooperative cancellation flag shared between a controller and its
/// workers. Cheap to poll (relaxed-ish atomics), safe to set from any
/// thread, latched until reset().
class CancellationToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Worker count honoring the BCERT_THREADS override (≥ 1 always).
std::size_t default_thread_count();

/// Resolves a user-facing `threads` knob: values > 0 are taken verbatim,
/// anything else (0 = "auto", negatives) falls back to
/// default_thread_count(). All parallelism knobs in the library
/// (IcpConfig::threads, FalsifierOptions::threads,
/// CmaesOptions::eval_threads, TrainOptions::threads) share these
/// semantics.
inline int resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  return static_cast<int>(default_thread_count());
}

/// Work-stealing pool of persistent worker threads.
class ThreadPool {
 public:
  /// Spawns \p threads workers; 0 means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues \p fn and returns a future for its result. Exceptions
  /// thrown by \p fn propagate through the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  /// Runs fn(0), ..., fn(n-1) concurrently and blocks until all have
  /// finished. The calling thread participates (it runs fn(0) and then
  /// helps drain the pool), so every strand makes progress even on a
  /// pool smaller than \p n and nested calls cannot deadlock.
  /// The first exception thrown by any strand is rethrown to the caller
  /// after all strands finish.
  void run_on_workers(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Chunked parallel loop over [begin, end): fn(chunk_begin, chunk_end)
  /// is called on chunks of at most \p grain indices. Blocking; the
  /// caller participates. \p cancel (optional) is polled between chunks.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    const CancellationToken* cancel = nullptr);

  /// Process-wide shared pool, lazily constructed with
  /// default_thread_count() workers. Subsystems that want parallelism
  /// without owning a pool (ICP, CMA-ES, falsifier) use this.
  static ThreadPool& global();

 private:
  using Task = std::function<void()>;

  struct WorkerQueue {
    std::mutex m;
    std::deque<Task> q;
  };

  void enqueue(Task task);
  /// Pops a task: own queue front first, then steals from the back of
  /// the other queues. Returns false when no task was found anywhere.
  bool try_pop(std::size_t self, Task& out);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<std::size_t> pending_{0};  ///< tasks enqueued, not yet claimed
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace bcert::parallel
