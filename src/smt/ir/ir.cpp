#include "src/smt/ir/ir.h"

#include <algorithm>
#include <iostream>
#include <map>
#include <ostream>
#include <tuple>

#include "src/core/runtime_config.h"
#include "src/expr/eval.h"
#include "src/smt/tape_kernels.h"

namespace bcert::smt::ir {

using expr::Op;
using interval::Interval;

Program Program::from_tape(const Hc4Tape& tape) {
  Program p;
  p.num_slots = tape.num_slots();
  p.forward.reserve(tape.code().size());
  p.backward.reserve(tape.code().size());

  for (const TapeInstr& ins : tape.code()) {
    FwdInstr f;
    f.dst = ins.dst;
    f.a = ins.a;
    f.b = ins.b;
    f.op = ins.op;
    f.exponent = ins.exponent;
    BwdInstr b;
    b.dst = ins.dst;
    b.a = ins.a;
    b.b = ins.b;
    b.op = ins.op;
    b.exponent = ins.exponent;
    if (ins.spec == kSpecMulConst) {
      f.kind = FwdKind::kMulConst;
      b.kind = BwdKind::kMulConst;
    } else {
      switch (ins.op) {
#if BCERT_TAPE_SSE2
        // The interpreter special-cases kAdd through the SSE kernels;
        // the IR mirrors its dispatch exactly so the emitted code and
        // the compile-time folding run the same arithmetic.
        case Op::kAdd:
          f.kind = FwdKind::kAdd;
          b.kind = BwdKind::kAdd;
          break;
#endif
        case Op::kSub:
          f.kind = FwdKind::kSub;  // inline twin of apply_interval_op
          break;
        case Op::kNeg:
          f.kind = FwdKind::kNeg;
          break;
        default:
          break;  // kGeneric / kGeneric
      }
    }
    p.forward.push_back(f);
    p.backward.push_back(b);
  }
  // Backward executes parents before children: reverse program order.
  std::reverse(p.backward.begin(), p.backward.end());
  return p;
}

namespace {

/// Slot → constant value map used by fold_constants. kNoSlot-free dense
/// vector keyed by slot index; `known[slot]` gates `value[slot]`.
struct ConstMap {
  std::vector<std::uint8_t> known;
  std::vector<Interval> value;

  explicit ConstMap(std::size_t slots) : known(slots, 0), value(slots) {}

  void set(TapeSlot s, const Interval& v) {
    known[s] = 1;
    value[s] = v;
  }
  bool has(TapeSlot s) const { return s != kNoSlot && known[s] != 0; }
};

}  // namespace

void Program::fold_constants(const Hc4Tape& tape) {
  static const Interval kNoOperand;  // the interpreter's unary filler
  ConstMap consts(num_slots);
  for (std::size_t i = 0; i < tape.const_slots().size(); ++i) {
    consts.set(tape.const_slots()[i], tape.const_values()[i]);
  }
  for (FwdInstr& f : forward) {
    // kMulConst always has a variable operand; kCopy/kFolded only exist
    // after this pass.
    if (f.kind == FwdKind::kMulConst || f.kind == FwdKind::kCopy ||
        f.kind == FwdKind::kFolded) {
      continue;
    }
    if (!consts.has(f.a)) continue;
    if (f.b != kNoSlot && !consts.has(f.b)) continue;
    const Interval& a = consts.value[f.a];
    Interval v;
#if BCERT_TAPE_SSE2
    if (f.kind == FwdKind::kAdd) {
      v = tkern::add_iv(a, consts.value[f.b]);
    } else
#endif
    {
      const Interval& b = f.b != kNoSlot ? consts.value[f.b] : kNoOperand;
      v = expr::apply_interval_op(f.op, f.exponent, a, b);
    }
    consts.set(f.dst, v);
    folded_consts.emplace_back(f.dst, v);
    f.kind = FwdKind::kFolded;
    ++stats.folded;
    // The backward projection of this node is deliberately retained:
    // it narrows the constant operand slots and its emptiness aborts
    // must fire exactly where the interpreter's would.
  }
}

void Program::share_subexpressions() {
  // Structural value numbering. kMulConst instructions normalize their
  // exponent (a spec-table index) away: identical operand slots imply an
  // identical constant, hence an identical product.
  using Key = std::tuple<std::uint8_t, std::int32_t, TapeSlot, TapeSlot>;
  std::map<Key, TapeSlot> seen;
  for (FwdInstr& f : forward) {
    if (f.kind == FwdKind::kFolded || f.kind == FwdKind::kCopy) continue;
    const std::int32_t exp =
        f.kind == FwdKind::kMulConst ? 0 : static_cast<std::int32_t>(f.exponent);
    const Key key{static_cast<std::uint8_t>(f.op), exp, f.a, f.b};
    const auto [it, inserted] = seen.emplace(key, f.dst);
    if (inserted) continue;
    // Duplicate: forward value is a copy of the representative's slot.
    // The node keeps its own slot and its own backward projection, so
    // per-node requirements replay exactly.
    f.kind = FwdKind::kCopy;
    f.a = it->second;
    f.b = kNoSlot;
    ++stats.shared;
  }
}

void Program::prune_dead_projections(const Hc4Tape& tape) {
  // Reference counts over everything that can read a slot at runtime:
  // forward operand reads, backward projections (target + sibling +
  // requirement), root intersections and variable readback.
  std::vector<std::uint32_t> refs(num_slots, 0);
  const auto ref = [&](TapeSlot s) {
    if (s != kNoSlot) ++refs[s];
  };
  for (const FwdInstr& f : forward) {
    if (f.kind == FwdKind::kFolded) continue;
    ref(f.a);
    if (f.kind != FwdKind::kCopy) ref(f.b);
  }
  for (const BwdInstr& b : backward) {
    ref(b.dst);
    if (b.kind == BwdKind::kCheckOnly) continue;
    ref(b.a);
    ref(b.b);
  }
  for (const TapeSlot s : tape.root_slots()) ref(s);
  for (const TapeSlot s : tape.var_slots()) ref(s);

  ConstMap consts(num_slots);
  for (const TapeSlot s : tape.const_slots()) consts.set(s, Interval());
  for (const auto& [slot, v] : folded_consts) consts.set(slot, v);

  for (BwdInstr& b : backward) {
    // (a) kPow with a non-positive exponent: project_node declines to
    // invert it, so only the requirement-emptiness check is observable.
    if (b.kind == BwdKind::kGeneric && b.op == Op::kPow && b.exponent <= 0) {
      b.kind = BwdKind::kCheckOnly;
      ++stats.dead_projections;
      continue;
    }
    // (b) kAdd leg-2 store demotion: when the leg's target is a
    // constant-valued leaf referenced by nothing but this instruction
    // (its two refs here: forward operand + backward leg), the narrowed
    // value is dead until the next constant re-seed. The intersect and
    // its emptiness abort remain; only the register store is elided.
    if (b.kind == BwdKind::kAdd && b.b != kNoSlot && b.b != b.a &&
        consts.has(b.b) && refs[b.b] == 2) {
      b.store_b = false;
      ++stats.demoted_stores;
    }
  }
}

PassStats Program::optimize(const Hc4Tape& tape) {
  const bool dump_passes = core::RuntimeConfig::active().jit_dump;
  fold_constants(tape);
  if (dump_passes) dump(std::cerr, "fold_constants");
  share_subexpressions();
  if (dump_passes) dump(std::cerr, "share_subexpressions");
  prune_dead_projections(tape);
  if (dump_passes) dump(std::cerr, "prune_dead_projections");
  return stats;
}

std::size_t Program::live_forward() const {
  std::size_t n = 0;
  for (const FwdInstr& f : forward) n += f.kind != FwdKind::kFolded;
  return n;
}

void Program::dump(std::ostream& os, const char* phase) const {
  os << "ir(" << phase << "): " << live_forward() << " fwd, "
     << backward.size() << " bwd, " << folded_consts.size() << " folded"
     << " [fold=" << stats.folded << " cse=" << stats.shared
     << " deadproj=" << stats.dead_projections
     << " demoted=" << stats.demoted_stores << "]\n";
  for (const FwdInstr& f : forward) {
    if (f.kind == FwdKind::kFolded) continue;
    os << "  f %" << f.dst << " = ";
    switch (f.kind) {
      case FwdKind::kCopy:
        os << "copy %" << f.a;
        break;
      case FwdKind::kMulConst:
        os << "mulconst %" << f.a << ", %" << f.b << " [mc" << f.exponent
           << "]";
        break;
      default:
        os << expr::op_name(f.op) << " %" << f.a;
        if (f.b != kNoSlot) os << ", %" << f.b;
        if (f.op == Op::kPow) os << " ^" << f.exponent;
        break;
    }
    os << "\n";
  }
  for (const BwdInstr& b : backward) {
    os << "  b %" << b.dst << " ";
    switch (b.kind) {
      case BwdKind::kCheckOnly:
        os << "check";
        break;
      case BwdKind::kMulConst:
        os << "proj mulconst [mc" << b.exponent << "]";
        break;
      case BwdKind::kAdd:
        os << "proj add -> %" << b.a << ", %" << b.b
           << (b.store_b ? "" : " (leg2 check-only)");
        break;
      default:
        os << "proj " << expr::op_name(b.op) << " -> %" << b.a;
        if (b.b != kNoSlot) os << ", %" << b.b;
        break;
    }
    os << "\n";
  }
}

}  // namespace bcert::smt::ir
