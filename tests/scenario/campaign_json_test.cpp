// Golden-file round-trip test for CampaignResult::to_json: a hand-built
// deterministic 8-scenario campaign — safe/failed/quarantined outcomes,
// degradation counters, escaped characters — serialized and compared
// byte-for-byte against tests/data/campaign_golden.json.
//
// Regenerate after an intentional schema change with
//   BCERT_UPDATE_GOLDEN=1 ./scenario_campaign_json_test
// and review the diff like any other API change.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/quadratic_form.h"

namespace bcert::core {
namespace {

const char* kGoldenPath =
    BCERT_SOURCE_DIR "/tests/data/campaign_golden.json";

/// Fully deterministic campaign: every field (including timings) is
/// hand-assigned — nothing is measured, so the serialization is stable
/// across machines and runs.
CampaignResult build_campaign() {
  CampaignResult campaign;

  const auto add = [&](ScenarioOutcome outcome) {
    campaign.scenarios.push_back(std::move(outcome));
  };

  {  // 0: clean safe quadratic result with generator coefficients.
    ScenarioOutcome o;
    o.name = "acc-s1-0";
    o.result.status = VerifyStatus::kSafe;
    o.result.template_kind = TemplateSpec::Kind::kQuadratic;
    o.result.generator = QuadraticForm(2, linalg::Vector{1.25, -0.5, 2.0});
    o.result.level = 0.75;
    o.result.lp_margin = 0.001953125;
    o.result.timings.candidate_iterations = 3;
    o.result.timings.lp_solves = 4;
    o.result.timings.lp_time_s = 0.125;
    o.result.timings.smt5_queries = 3;
    o.result.timings.smt5_time_s = 0.5;
    o.result.timings.simulation_time_s = 0.25;
    o.result.timings.generator_time_s = 0.875;
    o.result.timings.level_set_time_s = 0.0625;
    o.result.timings.total_time_s = 1.0;
    add(std::move(o));
  }
  {  // 1: safe polynomial-template result (no generator recorded).
    ScenarioOutcome o;
    o.name = "quadrotor-s1-1";
    o.result.status = VerifyStatus::kSafe;
    o.result.template_kind = TemplateSpec::Kind::kPolynomial;
    o.result.level = 1.5;
    o.result.timings.total_time_s = 2.0;
    add(std::move(o));
  }
  {  // 2: analytic failure (not an error, not quarantined).
    ScenarioOutcome o;
    o.name = "pendulum-elm-s1-2";
    o.result.status = VerifyStatus::kLpInfeasible;
    o.result.timings.candidate_iterations = 7;
    add(std::move(o));
  }
  {  // 3: counterexamples recorded, still failed.
    ScenarioOutcome o;
    o.name = "dubins-elm-s1-3";
    o.result.status = VerifyStatus::kMaxCandidateIterations;
    o.result.counterexamples = {linalg::Vector{0.5, -0.25},
                                linalg::Vector{-1.0, 0.125}};
    add(std::move(o));
  }
  {  // 4: quarantined after exhausting retries on injected faults.
    ScenarioOutcome o;
    o.name = "dubins-ctrnn-s1-4";
    o.result.status = VerifyStatus::kInternalError;
    o.result.error = Status(ErrorCode::kFaultInjected,
                            "injected fault at lp_solve (p=1)");
    o.result.degradation.retries = 2;
    o.attempts = 3;
    o.quarantined = true;
    add(std::move(o));
  }
  {  // 5: deadline expiry with a degraded (tape→tree) run behind it.
    ScenarioOutcome o;
    o.name = "acc-s1-5";
    o.result.status = VerifyStatus::kDeadlineExceeded;
    o.result.error =
        Status(ErrorCode::kDeadlineExceeded, "deadline of 0.5s elapsed");
    o.result.degradation.tape_to_tree = 1;
    o.result.degradation.cache_cold = 2;
    add(std::move(o));
  }
  {  // 6: resource governor tripped; SIMD ladder walked down.
    ScenarioOutcome o;
    o.name = "quadrotor-s1-6";
    o.result.status = VerifyStatus::kResourceExhausted;
    o.result.error = Status(ErrorCode::kResourceExhausted,
                            "memory quota of 1048576 bytes breached");
    o.result.degradation.simd_downgrade = 1;
    o.result.degradation.lp_cold = 3;
    o.attempts = 2;
    add(std::move(o));
  }
  {  // 7: escaping torture — quotes, backslash, newline, tab, control.
    ScenarioOutcome o;
    o.name = "odd \"name\"\\with\nnewline\tand\x01" "control";
    o.result.status = VerifyStatus::kInternalError;
    o.result.error =
        Status(ErrorCode::kInternal, "message with \"quotes\" and \\slash");
    add(std::move(o));
  }

  campaign.safe_count = 2;
  campaign.failed_count = 4;
  campaign.quarantined = {"dubins-ctrnn-s1-4"};
  campaign.wall_time_s = 2.0;  // => scenarios_per_sec == 4 exactly
  campaign.aggregate.candidate_iterations = 10;
  campaign.aggregate.lp_solves = 4;
  campaign.aggregate.lp_time_s = 0.125;
  campaign.aggregate.smt5_queries = 3;
  campaign.aggregate.smt5_time_s = 0.5;
  campaign.aggregate.simulation_time_s = 0.25;
  campaign.aggregate.generator_time_s = 0.875;
  campaign.aggregate.level_set_time_s = 0.0625;
  campaign.aggregate.total_time_s = 3.0;
  return campaign;
}

TEST(CampaignJson, MatchesGoldenFile) {
  const std::string json = build_campaign().to_json();

  if (std::getenv("BCERT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << json;
    GTEST_SKIP() << "golden file regenerated; re-run without "
                    "BCERT_UPDATE_GOLDEN";
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing " << kGoldenPath
      << " (regenerate with BCERT_UPDATE_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(json, golden.str())
      << "CampaignResult::to_json output drifted from the golden file. "
         "If the schema change is intentional, regenerate with "
         "BCERT_UPDATE_GOLDEN=1 and review the diff.";
}

TEST(CampaignJson, SerializationIsDeterministic) {
  EXPECT_EQ(build_campaign().to_json(), build_campaign().to_json());
}

TEST(CampaignJson, EscapedFieldsStayValidJson) {
  const std::string json = build_campaign().to_json();
  // The raw control byte and unescaped quote must never leak through.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("odd \\\"name\\\"\\\\with\\nnewline\\tand"),
            std::string::npos);
  // Quarantine + degradation fields present with the expected values.
  EXPECT_NE(json.find("\"quarantined\": [\"dubins-ctrnn-s1-4\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"tape_to_tree\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"retries\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"scenarios_per_sec\": 4"), std::string::npos);
}

}  // namespace
}  // namespace bcert::core
