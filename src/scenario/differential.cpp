#include "src/scenario/differential.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/expr/derivative.h"
#include "src/expr/eval.h"
#include "src/scenario/prng.h"
#include "src/smt/smtlib_export.h"

namespace bcert::scenario {

namespace {

/// Random quadratic-plus-linear form Σ c_ii·x_i² + Σ_{i<j} c_ij·x_i·x_j
/// + Σ c_i·x_i, diagonal-dominant like the certificates the LP actually
/// synthesizes.
expr::ExprId random_quadratic(expr::ExprPool& pool, std::size_t dims,
                              SplitMix64& rng) {
  expr::ExprId w = expr::kNoExpr;
  const auto accumulate = [&](expr::ExprId term) {
    w = (w == expr::kNoExpr) ? term : pool.add(w, term);
  };
  for (std::size_t i = 0; i < dims; ++i) {
    const expr::ExprId xi = pool.var(static_cast<std::int32_t>(i));
    accumulate(
        pool.mul(pool.constant(rng.uniform(0.2, 1.5)), pool.sqr(xi)));
    for (std::size_t j = i + 1; j < dims; ++j) {
      const expr::ExprId xj = pool.var(static_cast<std::int32_t>(j));
      accumulate(pool.mul(pool.constant(rng.uniform(-0.5, 0.5)),
                          pool.mul(xi, xj)));
    }
    accumulate(pool.mul(pool.constant(rng.uniform(-0.5, 0.5)), xi));
  }
  return w;
}

/// Random sub-box of \p rect: per-dimension window of 5–30% of the
/// extent around a uniform center, clamped to the rectangle.
interval::Box random_subbox(const core::Rect& rect, SplitMix64& rng) {
  interval::Box box(rect.dims());
  for (std::size_t i = 0; i < rect.dims(); ++i) {
    const double lo = rect.lo[i];
    const double hi = rect.hi[i];
    const double half = 0.5 * (hi - lo) * rng.uniform(0.05, 0.3);
    const double center = rng.uniform(lo, hi);
    box[i] = interval::Interval(std::max(lo, center - half),
                                std::min(hi, center + half));
  }
  return box;
}

/// W evaluated at the box midpoint (to place level thresholds so the
/// SAT/UNSAT mix straddles the border).
double value_at_midpoint(const expr::ExprPool& pool, expr::ExprId id,
                         const interval::Box& box) {
  const expr::Evaluator eval(pool, {id});
  return eval.eval(box.midpoint())[0];
}

/// True when \p value satisfies the relation with \p margin to spare
/// (strict enough that double-rounding cannot flip a real-arithmetic
/// witness). kEq is never claimed — equality needs exactness.
bool satisfied_with_margin(double value, smt::Rel rel, double margin) {
  switch (rel) {
    case smt::Rel::kGe:
    case smt::Rel::kGt:
      return value >= margin;
    case smt::Rel::kLe:
    case smt::Rel::kLt:
      return value <= -margin;
    case smt::Rel::kEq:
      return false;
  }
  return false;
}

/// True when \p value violates the relation by more than \p margin (for
/// cross-checking certain-SAT witnesses).
bool violated_beyond_margin(double value, smt::Rel rel, double margin) {
  switch (rel) {
    case smt::Rel::kGe:
    case smt::Rel::kGt:
      return value < -margin;
    case smt::Rel::kLe:
    case smt::Rel::kLt:
      return value > margin;
    case smt::Rel::kEq:
      return std::abs(value) > margin;
  }
  return false;
}

/// Minimal structural well-formedness of an exported benchmark:
/// non-empty, balanced parentheses, a (check-sat) command, and no
/// non-finite literals (dReal would reject all of these).
bool well_formed_smtlib(const std::string& text) {
  if (text.empty()) return false;
  long depth = 0;
  for (const char c : text) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (depth < 0) return false;
  }
  if (depth != 0) return false;
  if (text.find("(check-sat)") == std::string::npos) return false;
  if (text.find("nan") != std::string::npos) return false;
  if (text.find("inf") != std::string::npos) return false;
  return true;
}

}  // namespace

std::vector<DifferentialQuery> sample_queries(const core::Scenario& scenario,
                                              std::size_t count,
                                              std::uint64_t seed,
                                              expr::ExprPool& pool) {
  const core::BarrierProblem& problem = scenario.problem;
  const std::size_t n = problem.dims();
  std::vector<DifferentialQuery> queries;
  queries.reserve(count);

  for (std::size_t q = 0; q < count; ++q) {
    SplitMix64 rng(SplitMix64::derive(seed, q));
    const expr::ExprId w = random_quadratic(pool, n, rng);

    DifferentialQuery query;
    switch (q % 4) {
      case 0: {
        // Decrease-violation shape (condition (5)): ∇W·f + γ ≥ 0. The
        // sign and size of γ straddle the SAT/UNSAT border.
        const expr::ExprId lie =
            expr::lie_derivative(pool, w, problem.sym_field);
        const double gamma = rng.uniform(-0.5, 0.5);
        query.box = random_subbox(problem.safe_rect, rng);
        query.conjunction.add(pool.add(lie, pool.constant(gamma)),
                              smt::Rel::kGe);
        query.label = "decrease";
        break;
      }
      case 1: {
        // Initial-containment shape (condition (6)): W − ℓ > 0 over X0.
        query.box = problem.initial_set.as_box();
        const double wmid = value_at_midpoint(pool, w, query.box);
        const double level =
            wmid * rng.uniform(0.3, 3.0) + rng.jitter(0.1);
        query.conjunction.add(pool.sub(w, pool.constant(level)),
                              smt::Rel::kGt);
        query.label = "initial";
        break;
      }
      case 2: {
        // Level-set ∩ halfspace shape (condition (7)): W ≤ ℓ on an
        // unsafe face — a genuinely multi-constraint conjunction.
        query.box = random_subbox(problem.safe_rect, rng);
        const double wmid = value_at_midpoint(pool, w, query.box);
        const double level = wmid * rng.uniform(0.5, 2.0);
        const std::size_t dim = rng.below(n);
        const double bound =
            rng.uniform(query.box[dim].lo(), query.box[dim].hi());
        query.conjunction.add(pool.sub(w, pool.constant(level)),
                              smt::Rel::kLe);
        query.conjunction.add(
            pool.sub(pool.var(static_cast<std::int32_t>(dim)),
                     pool.constant(bound)),
            smt::Rel::kGe);
        query.label = "level-face";
        break;
      }
      default: {
        // Raw field-range query: f_j(x) − c ≥ 0 — the plant's own
        // operator mix (tanh layers, trig, |·|) with no template on top.
        const std::size_t j = rng.below(n);
        query.box = random_subbox(problem.safe_rect, rng);
        const double fmid =
            value_at_midpoint(pool, problem.sym_field[j], query.box);
        const double c = fmid + rng.jitter(0.5);
        query.conjunction.add(
            pool.sub(problem.sym_field[j], pool.constant(c)), smt::Rel::kGe);
        query.label = "field-range";
        break;
      }
    }
    query.label =
        scenario.name + ":q" + std::to_string(q) + ":" + query.label;
    queries.push_back(std::move(query));
  }
  return queries;
}

DifferentialReport run_differential(const expr::ExprPool& pool,
                                    std::span<const DifferentialQuery> queries,
                                    const HarnessOptions& options) {
  DifferentialReport report;

  smt::IcpConfig base;
  base.delta = options.delta;
  base.max_boxes = options.max_boxes;
  // Box-budget-bound, never wall-clock-bound: both backends must explore
  // the identical search tree regardless of machine load.
  base.time_limit_s = 1e9;
  base.threads = 1;
  base.batch_size = 1;
  base.warm_start = false;

  smt::IcpConfig tape_config = base;
  tape_config.hc4_mode = smt::Hc4Mode::kTape;
  smt::IcpConfig tree_config = base;
  tree_config.hc4_mode = smt::Hc4Mode::kTree;
  smt::IcpConfig jit_config = base;
  jit_config.hc4_mode = smt::Hc4Mode::kJit;
  const smt::IcpSolver tape_solver(pool, tape_config);
  const smt::IcpSolver tree_solver(pool, tree_config);
  const smt::IcpSolver jit_solver(pool, jit_config);

  // Exact-agreement comparator for a pair of contractually bit-identical
  // backends: same verdict, same explored search tree, same witness box.
  const auto compare_exact = [](const smt::IcpResult& a, const char* a_name,
                                const smt::IcpResult& b,
                                const char* b_name) -> std::string {
    if (a.verdict != b.verdict) {
      return std::string(a_name) + "=" + smt::sat_result_name(a.verdict) +
             " vs " + b_name + "=" + smt::sat_result_name(b.verdict);
    }
    if (a.stats.boxes_processed != b.stats.boxes_processed) {
      return "backend search trees diverged: " + std::string(a_name) +
             " processed " + std::to_string(a.stats.boxes_processed) +
             " boxes, " + b_name + " " +
             std::to_string(b.stats.boxes_processed);
    }
    if (a.witness.has_value() != b.witness.has_value()) {
      return std::string(a_name) + "/" + b_name + " witness presence mismatch";
    }
    if (a.witness.has_value()) {
      for (std::size_t d = 0; d < a.witness->size(); ++d) {
        if ((*a.witness)[d].lo() != (*b.witness)[d].lo() ||
            (*a.witness)[d].hi() != (*b.witness)[d].hi()) {
          return std::string(a_name) + "/" + b_name +
                 " witness boxes differ in dimension " + std::to_string(d);
        }
      }
    }
    return {};
  };

  for (std::size_t i = 0; i < queries.size(); ++i) {
    const DifferentialQuery& q = queries[i];
    ++report.queries;

    const smt::IcpResult tape = tape_solver.solve(q.conjunction, q.box);
    const smt::IcpResult tree = tree_solver.solve(q.conjunction, q.box);
    const smt::IcpResult jit = jit_solver.solve(q.conjunction, q.box);
    if (tape.is_sat()) ++report.sat_queries;
    if (tape.is_unsat()) ++report.unsat_queries;

    VerdictRecord record;
    record.label = q.label;
    record.tape = tape.verdict;
    record.tree = tree.verdict;
    record.jit = jit.verdict;

    std::string detail = compare_exact(tape, "tape", tree, "tree");
    if (detail.empty()) detail = compare_exact(tape, "tape", jit, "jit");

    // Sampled-point falsification: a double-arithmetic witness with
    // margin refutes an UNSAT proof outright.
    std::vector<expr::ExprId> roots;
    roots.reserve(q.conjunction.size());
    for (const smt::Constraint& c : q.conjunction.constraints) {
      roots.push_back(c.lhs);
    }
    const expr::Evaluator eval(pool, roots);
    SplitMix64 rng(SplitMix64::derive(0x5CE9A810F00DULL, i));
    linalg::Vector x(q.box.size());
    for (std::size_t s = 0; s < options.sample_points; ++s) {
      for (std::size_t d = 0; d < q.box.size(); ++d) {
        x[d] = rng.uniform(q.box[d].lo(), q.box[d].hi());
      }
      const std::vector<double> values = eval.eval(x);
      bool all = true;
      for (std::size_t c = 0; c < values.size(); ++c) {
        if (!satisfied_with_margin(values[c],
                                   q.conjunction.constraints[c].rel,
                                   options.point_margin)) {
          all = false;
          break;
        }
      }
      if (all) {
        record.point_witness = true;
        break;
      }
    }
    if (detail.empty() && record.point_witness && tape.is_unsat()) {
      detail = "sampled point satisfies the query but the solver proved "
               "UNSAT";
    }

    // Certain-SAT cross-check: the reported witness midpoint may not
    // violate any constraint beyond the rounding margin.
    if (detail.empty() && tape.verdict == smt::SatResult::kSat) {
      const std::vector<double> values =
          eval.eval(tape.witness->midpoint());
      for (std::size_t c = 0; c < values.size(); ++c) {
        if (violated_beyond_margin(values[c],
                                   q.conjunction.constraints[c].rel,
                                   options.point_margin)) {
          detail = "kSat witness midpoint violates constraint " +
                   std::to_string(c);
          break;
        }
      }
    }

    if (!detail.empty()) {
      ++report.disagreements;
      record.detail = std::move(detail);
      report.failures.push_back(record);
    }

    if (options.export_smtlib) {
      std::ostringstream os;
      smt::SmtLibOptions smt_options;
      smt_options.precision = options.delta;
      smt::write_smtlib(os, pool, q.conjunction, q.box, smt_options);
      const std::string text = os.str();
      report.smt2_bytes += text.size();
      if (!well_formed_smtlib(text)) {
        ++report.export_failures;
        VerdictRecord bad;
        bad.label = q.label;
        bad.detail = "malformed SMT-LIB export";
        report.failures.push_back(std::move(bad));
      }
    }
  }
  return report;
}

}  // namespace bcert::scenario
