#pragma once
/// \file polynomial_form.h
/// \brief General polynomial generator-function templates.
///
/// The paper prescribes "suitable templates, such as Sum-of-Squares
/// polynomials, where the coefficients of the monomial terms are to be
/// determined" and instantiates the case study with a quadratic. This
/// file provides the general monomial machinery: a basis of monomials of
/// bounded total degree (degree ≥ 2 so W(0) = 0), a coefficient vector
/// over it, numeric/symbolic evaluation and gradients. The LP synthesis
/// and the verifier (poly_verifier.h) operate on any such basis, so
/// quartic or higher templates can certify systems a quadratic cannot.

#include <string>
#include <vector>

#include "src/expr/expr.h"
#include "src/linalg/vector.h"

namespace bcert::core {

/// A fixed set of monomials x^α over `dims` variables with total degree
/// in [min_degree, max_degree], ordered by (degree, lexicographic α).
class MonomialBasis {
 public:
  /// Throws std::invalid_argument for dims = 0, min_degree < 1 or
  /// max_degree < min_degree.
  MonomialBasis(std::size_t dims, int min_degree, int max_degree);

  /// Convenience: the pure quadratic basis {x_i x_j}.
  static MonomialBasis quadratic(std::size_t dims) {
    return MonomialBasis(dims, 2, 2);
  }

  std::size_t dims() const { return dims_; }
  std::size_t size() const { return exponents_.size(); }

  /// Exponent vector α of monomial k (length dims()).
  const std::vector<int>& exponents(std::size_t k) const {
    return exponents_[k];
  }

  /// Total degree of monomial k.
  int degree(std::size_t k) const;

  /// x^α for monomial k.
  double value(std::size_t k, const linalg::Vector& x) const;

  /// ∇(x^α) for monomial k.
  linalg::Vector gradient(std::size_t k, const linalg::Vector& x) const;

  /// Symbolic monomial over pool variables 0..dims-1.
  expr::ExprId to_expr(std::size_t k, expr::ExprPool& pool) const;

  /// Human-readable monomial, e.g. "x0^2*x1".
  std::string to_string(std::size_t k) const;

 private:
  std::size_t dims_;
  std::vector<std::vector<int>> exponents_;
};

/// A polynomial W(x) = Σ_k c_k·m_k(x) over a monomial basis.
class PolynomialForm {
 public:
  /// Zero polynomial over \p basis.
  explicit PolynomialForm(MonomialBasis basis);

  /// Polynomial with explicit coefficients (size must match basis).
  PolynomialForm(MonomialBasis basis, linalg::Vector coeffs);

  const MonomialBasis& basis() const { return basis_; }
  const linalg::Vector& coeffs() const { return coeffs_; }
  std::size_t dims() const { return basis_.dims(); }

  double value(const linalg::Vector& x) const;
  linalg::Vector gradient(const linalg::Vector& x) const;
  expr::ExprId to_expr(expr::ExprPool& pool) const;

  /// Human-readable rendering, e.g. "0.5*x0^2 + 1*x0*x1".
  std::string to_string() const;

 private:
  MonomialBasis basis_;
  linalg::Vector coeffs_;
};

}  // namespace bcert::core
