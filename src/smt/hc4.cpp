#include "src/smt/hc4.h"

#include <limits>

namespace bcert::smt {

using expr::ExprId;
using expr::kNoExpr;
using expr::Node;
using expr::Op;
using interval::Interval;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<ExprId> roots_of(const Conjunction& c) {
  std::vector<ExprId> roots;
  roots.reserve(c.constraints.size());
  for (const Constraint& k : c.constraints) roots.push_back(k.lhs);
  return roots;
}

}  // namespace

Hc4Contractor::Hc4Contractor(const expr::ExprPool& pool,
                             Conjunction conjunction)
    : conjunction_(std::move(conjunction)),
      eval_(pool, roots_of(conjunction_)) {
  root_positions_.reserve(conjunction_.size());
  for (const Constraint& k : conjunction_.constraints) {
    root_positions_.push_back(eval_.position_of(k.lhs));
  }
}

std::vector<Interval> Hc4Contractor::root_values(const interval::Box& box) {
  return eval_.eval(box);
}

bool Hc4Contractor::certainly_satisfied(const interval::Box& box) {
  const auto vals = root_values(box);
  for (std::size_t i = 0; i < conjunction_.size(); ++i) {
    if (!conjunction_.constraints[i].certainly_satisfied(vals[i])) {
      return false;
    }
  }
  return true;
}

bool Hc4Contractor::certainly_violated(const interval::Box& box) {
  const auto vals = root_values(box);
  for (std::size_t i = 0; i < conjunction_.size(); ++i) {
    if (conjunction_.constraints[i].certainly_violated(vals[i])) return true;
  }
  return false;
}

ContractResult Hc4Contractor::contract(interval::Box& box) {
  // Forward pass: natural interval extension for every DAG node.
  eval_.eval_forward(box, req_);

  // Intersect each constraint root with its feasible value set.
  for (std::size_t i = 0; i < conjunction_.size(); ++i) {
    const std::size_t pos = root_positions_[i];
    req_[pos] =
        intersect(req_[pos], conjunction_.constraints[i].feasible_values());
    if (req_[pos].is_empty()) return ContractResult::kEmpty;
  }

  if (!backward_sweep()) return ContractResult::kEmpty;

  // Read back variable intervals.
  bool changed = false;
  const auto& schedule = eval_.schedule();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Node& n = eval_.pool().node(schedule[i]);
    if (n.op != Op::kVar) continue;
    const auto dim = static_cast<std::size_t>(n.index);
    const Interval narrowed = intersect(box[dim], req_[i]);
    if (narrowed.is_empty()) return ContractResult::kEmpty;
    if (!(narrowed == box[dim])) {
      box[dim] = narrowed;
      changed = true;
    }
  }
  return changed ? ContractResult::kContracted : ContractResult::kNoChange;
}

bool Hc4Contractor::backward_sweep() {
  const auto& schedule = eval_.schedule();
  const expr::ExprPool& pool = eval_.pool();

  // Reverse topological order: parents are processed before children, so
  // each node's requirement is final before it is projected downward.
  for (std::size_t idx = schedule.size(); idx-- > 0;) {
    const Node& n = pool.node(schedule[idx]);
    const Interval r = req_[idx];
    if (r.is_empty()) return false;
    if (n.a == kNoExpr) continue;  // leaf

    const std::size_t pa = eval_.position_of(n.a);
    const std::size_t pb =
        n.b != kNoExpr ? eval_.position_of(n.b) : expr::Evaluator::npos;
    Interval& a = req_[pa];
    auto refine = [](Interval& target, const Interval& with) {
      target = intersect(target, with);
      return !target.is_empty();
    };

    switch (n.op) {
      case Op::kAdd: {
        Interval& b = req_[pb];
        if (!refine(a, r - b)) return false;
        if (!refine(b, r - a)) return false;
        break;
      }
      case Op::kSub: {
        Interval& b = req_[pb];
        if (!refine(a, r + b)) return false;
        if (!refine(b, a - r)) return false;
        break;
      }
      case Op::kMul: {
        Interval& b = req_[pb];
        if (!refine(a, r / b)) return false;
        if (!refine(b, r / a)) return false;
        break;
      }
      case Op::kDiv: {
        Interval& b = req_[pb];
        if (!refine(a, r * b)) return false;
        if (!refine(b, a / r)) return false;
        break;
      }
      case Op::kNeg:
        if (!refine(a, -r)) return false;
        break;
      case Op::kSin: {
        // Invertible only on the principal monotone branch.
        const Interval principal(-interval::kPiLower / 2.0,
                                 interval::kPiLower / 2.0);
        if (principal.contains(a)) {
          if (!refine(a, interval::asin(r))) return false;
        }
        break;
      }
      case Op::kCos: {
        const Interval pos_branch(0.0, interval::kPiLower);
        const Interval neg_branch(-interval::kPiLower, 0.0);
        if (pos_branch.contains(a)) {
          if (!refine(a, interval::acos(r))) return false;
        } else if (neg_branch.contains(a)) {
          if (!refine(a, -interval::acos(r))) return false;
        }
        break;
      }
      case Op::kTan: {
        const Interval principal(-interval::kPiLower / 2.0,
                                 interval::kPiLower / 2.0);
        if (principal.contains(a)) {
          if (!refine(a, interval::atan(r))) return false;
        }
        break;
      }
      case Op::kAtan:
        if (!refine(a, interval::tan(r))) return false;
        break;
      case Op::kExp:
        if (!refine(a, interval::log(r))) return false;
        break;
      case Op::kLog:
        if (!refine(a, interval::exp(r))) return false;
        break;
      case Op::kSqrt:
        if (!refine(a, interval::sqr(intersect(r, {0.0, kInf})))) {
          return false;
        }
        break;
      case Op::kSqr: {
        const Interval s = interval::sqrt(r);
        const Interval cand = hull(intersect(a, Interval(-s.hi(), -s.lo())),
                                   intersect(a, s));
        a = cand;
        if (a.is_empty()) return false;
        break;
      }
      case Op::kPow: {
        if (n.index <= 0) break;  // no projection for non-positive powers
        if (n.index % 2 == 0) {
          const Interval s = interval::nth_root(r, n.index);
          const Interval cand = hull(
              intersect(a, Interval(-s.hi(), -s.lo())), intersect(a, s));
          a = cand;
          if (a.is_empty()) return false;
        } else {
          if (!refine(a, interval::nth_root(r, n.index))) return false;
        }
        break;
      }
      case Op::kTanh:
        if (!refine(a, interval::atanh(r))) return false;
        break;
      case Op::kSigmoid:
        if (!refine(a, interval::logit(r))) return false;
        break;
      case Op::kRelu: {
        if (r.hi() < 0.0) return false;  // relu(x) ≥ 0 always
        if (r.lo() > 0.0) {
          if (!refine(a, r)) return false;
        } else {
          if (!refine(a, Interval(-kInf, r.hi()))) return false;
        }
        break;
      }
      case Op::kAbs: {
        const Interval rr = intersect(r, {0.0, kInf});
        if (rr.is_empty()) return false;
        const Interval cand = hull(
            intersect(a, Interval(-rr.hi(), -rr.lo())), intersect(a, rr));
        a = cand;
        if (a.is_empty()) return false;
        break;
      }
      case Op::kMin: {
        Interval& b = req_[pb];
        // Both operands are ≥ min's lower bound.
        if (!refine(a, Interval(r.lo(), kInf))) return false;
        if (!refine(b, Interval(r.lo(), kInf))) return false;
        // If one operand cannot attain the min, the other must.
        if (b.lo() > r.hi() && !refine(a, Interval(-kInf, r.hi()))) {
          return false;
        }
        if (a.lo() > r.hi() && !refine(b, Interval(-kInf, r.hi()))) {
          return false;
        }
        break;
      }
      case Op::kMax: {
        Interval& b = req_[pb];
        if (!refine(a, Interval(-kInf, r.hi()))) return false;
        if (!refine(b, Interval(-kInf, r.hi()))) return false;
        if (b.hi() < r.lo() && !refine(a, Interval(r.lo(), kInf))) {
          return false;
        }
        if (a.hi() < r.lo() && !refine(b, Interval(r.lo(), kInf))) {
          return false;
        }
        break;
      }
      case Op::kConst:
      case Op::kVar:
        break;
    }
  }
  return true;
}

ContractResult Hc4Contractor::contract_fixpoint(interval::Box& box,
                                                int max_passes,
                                                double ratio) {
  bool any_change = false;
  for (int pass = 0; pass < max_passes; ++pass) {
    const double before = box.perimeter();
    const ContractResult r = contract(box);
    if (r == ContractResult::kEmpty) return ContractResult::kEmpty;
    if (r == ContractResult::kNoChange) break;
    any_change = true;
    const double after = box.perimeter();
    if (before <= 0.0 || (before - after) / before < ratio) break;
  }
  return any_change ? ContractResult::kContracted : ContractResult::kNoChange;
}

}  // namespace bcert::smt
