#include "src/core/pipeline.h"

#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <memory>
#include <random>

#include "src/expr/derivative.h"
#include "src/parallel/thread_pool.h"
#include "src/smt/smtlib_export.h"

namespace bcert::core {

namespace {

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point t0) {
  return std::chrono::duration<double>(clock::now() - t0).count();
}

}  // namespace

const char* job_phase_name(JobPhase p) {
  switch (p) {
    case JobPhase::kSeeding: return "seeding";
    case JobPhase::kCandidateLoop: return "candidate-loop";
    case JobPhase::kLevelSet: return "level-set";
    case JobPhase::kDone: return "done";
  }
  return "?";
}

// --- CertificateTraits<QuadraticForm> ---------------------------------------

PipelineSynthesis<QuadraticForm> CertificateTraits<QuadraticForm>::synthesize(
    const std::vector<FieldSample>& samples,
    const BarrierPipeline<QuadraticForm>& pipeline,
    const SynthesisOptions& options) {
  SynthesisResult r =
      synthesize_candidate(samples, pipeline.problem().dims(), options);
  PipelineSynthesis<QuadraticForm> out;
  out.feasible = r.feasible;
  out.candidate = std::move(r.candidate);
  out.margin = r.margin;
  out.basis = std::move(r.basis);
  out.lp_warm_started = r.lp_warm_started;
  out.binding_states = std::move(r.binding_states);
  return out;
}

void CertificateTraits<QuadraticForm>::store_generator(
    VerifyResult& result, const QuadraticForm& w) {
  result.generator = w;
}

bool CertificateTraits<QuadraticForm>::certificate_admissible(
    const QuadraticForm& w, double level) {
  return w.positive_definite() && level > 0.0;
}

std::optional<std::pair<double, double>>
CertificateTraits<QuadraticForm>::level_window(
    const BarrierPipeline<QuadraticForm>& pipeline, const QuadraticForm& w) {
  const BarrierProblem& problem = pipeline.problem();
  if (!w.positive_definite()) return std::nullopt;
  const double lo = w.min_level_containing(problem.initial_set);
  double hi = std::numeric_limits<double>::infinity();
  for (const Halfspace& hs : complement_halfspaces(problem.safe_rect)) {
    if (!problem.dim_unsafe(hs.dim)) continue;
    const std::optional<double> cap = w.max_level_avoiding(hs);
    if (!cap) return std::nullopt;
    hi = std::min(hi, *cap);
  }
  if (!std::isfinite(hi)) return std::nullopt;
  if (!(lo < hi) || lo <= 0.0) return std::nullopt;
  return std::make_pair(lo, hi);
}

smt::IcpResult CertificateTraits<QuadraticForm>::check_level_exclusion(
    const BarrierPipeline<QuadraticForm>& pipeline, const QuadraticForm& w,
    double level) {
  const BarrierProblem& problem = pipeline.problem();
  expr::ExprPool& pool = *problem.pool;

  // The level set L = {W ≤ ℓ} is bounded (W must be PD to get here);
  // search its padded bounding box intersected with each unsafe
  // halfspace of U = complement(safe_rect).
  const std::optional<Rect> bbox = w.level_set_bounding_box(level);
  if (!bbox) {
    // Not PD — report as a (spurious) SAT so the caller rejects ℓ.
    smt::IcpResult r;
    r.verdict = smt::SatResult::kDeltaSat;
    return r;
  }
  Rect padded = *bbox;
  for (std::size_t i = 0; i < padded.dims(); ++i) {
    const double pad = 1e-6 + 1e-6 * (padded.hi[i] - padded.lo[i]);
    padded.lo[i] -= pad;
    padded.hi[i] += pad;
  }

  smt::Conjunction in_level_set;
  in_level_set.add(pool.sub(w.to_expr(pool), pool.constant(level)),
                   smt::Rel::kLe);
  // Only the unsafe dimensions' halfspaces constitute U.
  smt::Dnf outside;
  for (const Halfspace& hs : complement_halfspaces(problem.safe_rect)) {
    if (!problem.dim_unsafe(hs.dim)) continue;
    smt::Conjunction c;
    c.constraints.push_back(halfspace_constraint(pool, hs));
    outside.disjuncts.push_back(std::move(c));
  }
  const smt::Dnf query = outside.conjoin(smt::Dnf::single(in_level_set));
  return pipeline.solve(query, padded.as_box());
}

// --- CertificateTraits<PolynomialForm> --------------------------------------

PipelineSynthesis<PolynomialForm>
CertificateTraits<PolynomialForm>::synthesize(
    const std::vector<FieldSample>& samples,
    const BarrierPipeline<PolynomialForm>& pipeline,
    const SynthesisOptions& options) {
  PolySynthesisResult r = synthesize_polynomial_candidate(
      samples, pipeline.context().basis, options);
  PipelineSynthesis<PolynomialForm> out;
  out.feasible = r.feasible;
  out.candidate = std::move(r.candidate);
  out.margin = r.margin;
  out.basis = std::move(r.basis);
  out.lp_warm_started = r.lp_warm_started;
  return out;
}

void CertificateTraits<PolynomialForm>::store_generator(
    VerifyResult& result, const PolynomialForm& w) {
  result.poly_generator = w;
}

bool CertificateTraits<PolynomialForm>::certificate_admissible(
    const PolynomialForm&, double level) {
  return level > 0.0;
}

std::optional<std::pair<double, double>>
CertificateTraits<PolynomialForm>::level_window(
    const BarrierPipeline<PolynomialForm>& pipeline, const PolynomialForm& w) {
  const BarrierProblem& problem = pipeline.problem();
  expr::ExprPool& pool = *problem.pool;
  const expr::ExprId w_expr = w.to_expr(pool);
  const smt::OptimizeConfig& optimize = pipeline.context().optimize;

  // ℓ_min: certified *upper* bound of max W over X0 (so X0 ⊂ L holds
  // for any ℓ above it).
  const smt::OptimizeResult over_x0 =
      smt::maximize(pool, w_expr, problem.initial_set.as_box(), optimize);
  const double lo = over_x0.upper;

  // ℓ_max: certified *lower* bound of min W over the boundary faces.
  double hi = std::numeric_limits<double>::infinity();
  for (const interval::Box& face : pipeline.safe_faces(true)) {
    const smt::OptimizeResult on_face =
        smt::minimize(pool, w_expr, face, optimize);
    hi = std::min(hi, on_face.lower);
  }
  if (!(lo < hi) || lo <= 0.0 || !std::isfinite(hi)) return std::nullopt;
  return std::make_pair(lo, hi);
}

smt::IcpResult CertificateTraits<PolynomialForm>::check_level_exclusion(
    const BarrierPipeline<PolynomialForm>& pipeline, const PolynomialForm& w,
    double level) {
  // Condition (7′): ∃x ∈ ∂(safe_rect) with W(x) ≤ ℓ — must be UNSAT.
  // Faces of domain-only dimensions are covered by the flow-invariance
  // check instead (BarrierProblem::unsafe_dims).
  const BarrierProblem& problem = pipeline.problem();
  expr::ExprPool& pool = *problem.pool;
  smt::Conjunction in_level_set;
  in_level_set.add(pool.sub(w.to_expr(pool), pool.constant(level)),
                   smt::Rel::kLe);

  smt::IcpResult aggregate;
  aggregate.verdict = smt::SatResult::kUnsat;
  for (const interval::Box& face : pipeline.safe_faces(true)) {
    smt::IcpResult r = pipeline.solve(in_level_set, face);
    aggregate.stats.boxes_processed += r.stats.boxes_processed;
    aggregate.stats.solve_time_s += r.stats.solve_time_s;
    if (r.is_sat()) return r;
    if (r.verdict == smt::SatResult::kUnknown) {
      aggregate.verdict = smt::SatResult::kUnknown;
    }
  }
  return aggregate;
}

// --- BarrierPipeline --------------------------------------------------------

template <typename Form>
BarrierPipeline<Form>::BarrierPipeline(BarrierProblem problem,
                                       VerifierOptions options,
                                       TemplateSpec spec)
    : problem_(std::move(problem)),
      options_(std::move(options)),
      spec_(spec),
      context_(problem_, spec_) {
  problem_.validate();
  // Multi-query ICP: every δ-SAT check in the LP ↔ SMT refinement loop
  // goes through this pipeline's pool, and the adaptive-δ re-checks
  // repeat identical (hash-consed) conjunctions, so one shared tape
  // cache lets the solvers reuse compiled HC4 schedules across queries.
  // The Engine injects longer-lived caches here to extend the reuse
  // across whole scenario campaigns; a standalone pipeline's caches die
  // with it, well before the ExprPool.
  if (!options_.icp.tape_cache) {
    options_.icp.tape_cache = std::make_shared<smt::TapeCache>();
  }
  // UNSAT-tree warm-starting (BCERT_ICP_WARM): successive candidates
  // differ only in W's coefficients, so their decrease/level queries
  // share structural signatures and each refutation seeds the next
  // query's frontier from the previous proof's leaf partition. Sound by
  // construction — replayed leaves partition the same search box, and a
  // stale seed silently cold-starts — so verdicts never change.
  if (!options_.icp.unsat_cache) {
    options_.icp.unsat_cache = std::make_shared<smt::UnsatTreeCache>();
  }
}

template <typename Form>
smt::IcpConfig BarrierPipeline<Form>::icp_config(double delta) const {
  smt::IcpConfig config = options_.icp;
  if (delta > 0.0) config.delta = delta;
  if (hooks_.cancel != nullptr) config.interrupt = hooks_.cancel;
  if (hooks_.pool != nullptr && config.pool == nullptr) {
    config.pool = hooks_.pool;
  }
  if (hooks_.has_deadline) {
    const double remaining =
        std::chrono::duration<double>(hooks_.deadline - clock::now())
            .count();
    config.time_limit_s = std::min(config.time_limit_s,
                                   std::max(0.0, remaining));
  }
  config.mem_budget = hooks_.mem_budget;
  config.degrade = &degrade_;
  return config;
}

template <typename Form>
bool BarrierPipeline<Form>::interrupted(VerifyResult& result) const {
  if (hooks_.cancel != nullptr && hooks_.cancel->cancelled()) {
    result.status = VerifyStatus::kCancelled;
    return true;
  }
  if (hooks_.has_deadline && clock::now() >= hooks_.deadline) {
    result.status = VerifyStatus::kDeadlineExceeded;
    return true;
  }
  return false;
}

template <typename Form>
VerifyStatus BarrierPipeline<Form>::unknown_status() const {
  if (hooks_.mem_budget != nullptr && hooks_.mem_budget->exhausted()) {
    return VerifyStatus::kResourceExhausted;
  }
  return VerifyStatus::kSolverBudget;
}

template <typename Form>
void BarrierPipeline<Form>::report_progress(JobPhase phase,
                                            int candidate_iteration,
                                            int level_iteration) const {
  if (!hooks_.on_progress) return;
  JobProgress progress;
  progress.phase = phase;
  progress.candidate_iteration = candidate_iteration;
  progress.level_iteration = level_iteration;
  hooks_.on_progress(progress);
}

template <typename Form>
smt::IcpResult BarrierPipeline<Form>::solve(const smt::Conjunction& query,
                                            const interval::Box& box) const {
  smt::IcpSolver solver(*problem_.pool, icp_config());
  return solver.solve(query, box);
}

template <typename Form>
smt::IcpResult BarrierPipeline<Form>::solve(const smt::Dnf& query,
                                            const interval::Box& box) const {
  smt::IcpSolver solver(*problem_.pool, icp_config());
  return solver.solve(query, box);
}

template <typename Form>
std::vector<FieldSample> BarrierPipeline<Form>::simulate_samples(
    const linalg::Vector& x0) const {
  ode::IntegrateOptions iopts;
  iopts.step = options_.trace_dt;
  iopts.t_end = options_.trace_duration;
  const Rect& domain = problem_.safe_rect;
  // Stop once the state leaves a slightly padded domain — such states
  // are in U and contribute no constraints.
  iopts.stop = [&domain](double, const linalg::Vector& x) {
    for (std::size_t i = 0; i < domain.dims(); ++i) {
      const double pad = 0.05 * (domain.hi[i] - domain.lo[i]);
      if (x[i] < domain.lo[i] - pad || x[i] > domain.hi[i] + pad) return true;
    }
    return false;
  };
  const ode::Trace trace =
      integrate_rk4(problem_.make_fast_field(), x0, iopts);
  return samples_from_trace(trace, problem_.sim_field, domain,
                            options_.samples_per_trace,
                            &problem_.initial_set);
}

template <typename Form>
std::vector<linalg::Vector> BarrierPipeline<Form>::random_initial_states(
    int count, unsigned seed) const {
  std::mt19937 rng(seed);
  const Rect& domain = problem_.safe_rect;
  std::vector<std::uniform_real_distribution<double>> dims;
  dims.reserve(domain.dims());
  for (std::size_t i = 0; i < domain.dims(); ++i) {
    dims.emplace_back(domain.lo[i], domain.hi[i]);
  }
  std::vector<linalg::Vector> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    linalg::Vector x(domain.dims());
    for (std::size_t i = 0; i < domain.dims(); ++i) x[i] = dims[i](rng);
    out.push_back(std::move(x));
  }
  return out;
}

template <typename Form>
smt::IcpResult BarrierPipeline<Form>::check_decrease(const Form& w,
                                                     double delta) const {
  expr::ExprPool& pool = *problem_.pool;
  const expr::ExprId w_expr = w.to_expr(pool);
  const expr::ExprId lie =
      expr::lie_derivative(pool, w_expr, problem_.sym_field);
  // ∇W·f + γ ≥ 0 — the satisfiability query whose UNSAT proves (3).
  smt::Conjunction decrease;
  decrease.add(pool.add(lie, pool.constant(options_.gamma)), smt::Rel::kGe);

  // x ∈ D \ X0 : search the safe rectangle, excluding X0 (DNF split).
  const smt::Dnf query =
      outside_rect(pool, problem_.initial_set)
          .conjoin(smt::Dnf::single(std::move(decrease)));

  smt::IcpSolver solver(pool, icp_config(delta));
  return solver.solve(query, problem_.safe_rect.as_box());
}

template <typename Form>
double BarrierPipeline<Form>::numeric_lie(const Form& w,
                                          const linalg::Vector& x) const {
  return dot(w.gradient(x), problem_.sim_field(x));
}

template <typename Form>
smt::IcpResult BarrierPipeline<Form>::check_initial_contained(
    const Form& w, double level) const {
  expr::ExprPool& pool = *problem_.pool;
  smt::Conjunction query;
  // W(x) − ℓ > 0 somewhere in X0 would violate X0 ⊂ L.
  query.add(pool.sub(w.to_expr(pool), pool.constant(level)), smt::Rel::kGt);
  return solve(query, problem_.initial_set.as_box());
}

template <typename Form>
smt::IcpResult BarrierPipeline<Form>::check_level_exclusion(
    const Form& w, double level) const {
  return Traits::check_level_exclusion(*this, w, level);
}

template <typename Form>
smt::IcpResult BarrierPipeline<Form>::check_domain_invariance() const {
  expr::ExprPool& pool = *problem_.pool;
  smt::IcpSolver solver(pool, icp_config());

  smt::IcpResult aggregate;
  aggregate.verdict = smt::SatResult::kUnsat;
  for (std::size_t i = 0; i < problem_.dims(); ++i) {
    if (problem_.dim_unsafe(i)) continue;
    for (const int side : {-1, +1}) {
      // On the face x_i = bound, outward flow means side·f_i(x) > 0.
      interval::Box face = problem_.safe_rect.as_box();
      const double bound =
          side > 0 ? problem_.safe_rect.hi[i] : problem_.safe_rect.lo[i];
      face[i] = interval::Interval(bound);
      smt::Conjunction outward;
      const expr::ExprId fi = problem_.sym_field[i];
      outward.add(side > 0 ? fi : pool.neg(fi), smt::Rel::kGt);
      smt::IcpResult r = solver.solve(outward, face);
      aggregate.stats.boxes_processed += r.stats.boxes_processed;
      aggregate.stats.solve_time_s += r.stats.solve_time_s;
      if (r.is_sat()) return r;
      if (r.verdict == smt::SatResult::kUnknown) {
        aggregate.verdict = smt::SatResult::kUnknown;
      }
    }
  }
  return aggregate;
}

template <typename Form>
std::optional<std::pair<double, double>> BarrierPipeline<Form>::level_window(
    const Form& w) const {
  return Traits::level_window(*this, w);
}

template <typename Form>
std::vector<interval::Box> BarrierPipeline<Form>::safe_faces(
    bool unsafe_only) const {
  const Rect& s = problem_.safe_rect;
  std::vector<interval::Box> faces;
  faces.reserve(2 * s.dims());
  for (std::size_t i = 0; i < s.dims(); ++i) {
    if (unsafe_only && !problem_.dim_unsafe(i)) continue;
    for (const double pin : {s.lo[i], s.hi[i]}) {
      interval::Box face = s.as_box();
      face[i] = interval::Interval(pin);
      faces.push_back(std::move(face));
    }
  }
  return faces;
}

template <typename Form>
VerifyStatus BarrierPipeline<Form>::check_certificate(const Form& w,
                                                      double level) const {
  if (!Traits::certificate_admissible(w, level)) {
    return VerifyStatus::kLevelSetFailed;
  }
  const smt::IcpResult decrease = check_decrease(w);
  if (decrease.verdict == smt::SatResult::kUnknown) {
    return VerifyStatus::kSolverBudget;
  }
  if (!decrease.is_unsat()) return VerifyStatus::kMaxCandidateIterations;

  const smt::IcpResult init = check_initial_contained(w, level);
  if (init.verdict == smt::SatResult::kUnknown) {
    return VerifyStatus::kSolverBudget;
  }
  if (!init.is_unsat()) return VerifyStatus::kLevelSetFailed;

  const smt::IcpResult unsafe = check_level_exclusion(w, level);
  if (unsafe.verdict == smt::SatResult::kUnknown) {
    return VerifyStatus::kSolverBudget;
  }
  if (!unsafe.is_unsat()) return VerifyStatus::kLevelSetFailed;

  return VerifyStatus::kSafe;
}

template <typename Form>
void BarrierPipeline<Form>::export_queries_smtlib(
    const Form& w, double level, const std::string& prefix) const {
  expr::ExprPool& pool = *problem_.pool;
  smt::SmtLibOptions sopts;
  sopts.precision = options_.icp.delta;

  // Condition (5): decrease over D \ X0.
  {
    const expr::ExprId lie =
        expr::lie_derivative(pool, w.to_expr(pool), problem_.sym_field);
    smt::Conjunction decrease;
    decrease.add(pool.add(lie, pool.constant(options_.gamma)), smt::Rel::kGe);
    const smt::Dnf query =
        outside_rect(pool, problem_.initial_set)
            .conjoin(smt::Dnf::single(std::move(decrease)));
    std::ofstream os(prefix + "_decrease.smt2");
    write_smtlib(os, pool, query, problem_.safe_rect.as_box(), sopts);
  }
  // Condition (6): X0 escapes the level set.
  {
    smt::Conjunction query;
    query.add(pool.sub(w.to_expr(pool), pool.constant(level)),
              smt::Rel::kGt);
    std::ofstream os(prefix + "_initial.smt2");
    write_smtlib(os, pool, query, problem_.initial_set.as_box(), sopts);
  }
  // Condition (7): the level set touches U.
  {
    smt::Conjunction in_level_set;
    in_level_set.add(pool.sub(w.to_expr(pool), pool.constant(level)),
                     smt::Rel::kLe);
    const smt::Dnf query = outside_rect(pool, problem_.safe_rect)
                               .conjoin(smt::Dnf::single(in_level_set));
    interval::Box search = problem_.safe_rect.as_box();
    if constexpr (std::is_same_v<Form, QuadraticForm>) {
      const std::optional<Rect> bbox = w.level_set_bounding_box(level);
      if (bbox) search = bbox->as_box();
    }
    std::ofstream os(prefix + "_unsafe.smt2");
    write_smtlib(os, pool, query, search, sopts);
  }
}

template <typename Form>
VerifyResult BarrierPipeline<Form>::run(PipelineHooks hooks) {
  hooks_ = std::move(hooks);
  degrade_.jit_to_tape.store(0, std::memory_order_relaxed);
  degrade_.tape_to_tree.store(0, std::memory_order_relaxed);
  degrade_.simd_downgrade.store(0, std::memory_order_relaxed);
  degrade_.cache_cold.store(0, std::memory_order_relaxed);
  degrade_.lp_cold.store(0, std::memory_order_relaxed);

  VerifyResult result = run_impl();

  // Every exit path carries the fallback tally and a typed error, so
  // campaign JSON can tell a degraded-but-clean run from a failed one.
  result.degradation = degrade_.snapshot();
  switch (result.status) {
    case VerifyStatus::kCancelled:
      result.error = Status(ErrorCode::kCancelled, "job cancelled");
      break;
    case VerifyStatus::kDeadlineExceeded:
      result.error = Status(ErrorCode::kDeadlineExceeded,
                            "job deadline exceeded");
      break;
    case VerifyStatus::kResourceExhausted:
      result.error = Status(
          ErrorCode::kResourceExhausted,
          "memory quota exceeded (" +
              std::to_string(hooks_.mem_budget != nullptr
                                 ? hooks_.mem_budget->quota()
                                 : 0) +
              " bytes)");
      break;
    default:
      break;  // not an error-taxonomy status
  }
  hooks_ = PipelineHooks{};
  return result;
}

template <typename Form>
VerifyResult BarrierPipeline<Form>::run_impl() {
  VerifyResult result;
  result.template_kind = Traits::kKind;
  const auto t_start = clock::now();

  // ---- Seed simulations --------------------------------------------------
  report_progress(JobPhase::kSeeding, 0, 0);
  if (interrupted(result)) {
    result.timings.total_time_s = seconds_since(t_start);
    return result;
  }
  const auto t_seed = clock::now();
  std::vector<FieldSample> samples;
  for (const linalg::Vector& x0 :
       random_initial_states(options_.seed_traces, options_.seed)) {
    const auto s = simulate_samples(x0);
    samples.insert(samples.end(), s.begin(), s.end());
  }
  // Domain-wide positivity anchors (decrease-exempt).
  for (const linalg::Vector& x : random_initial_states(
           options_.positivity_samples, options_.seed + 7919)) {
    samples.push_back({x, problem_.sim_field(x), /*require_decrease=*/false});
  }
  result.timings.simulation_time_s += seconds_since(t_seed);

  // ---- Candidate loop: LP ↔ SMT(5) ---------------------------------------
  const auto t_gen = clock::now();
  std::optional<Form> generator;
  // Each refinement iteration re-solves the margin LP with the same
  // variables and all previous rows plus the new counterexample rows —
  // the append-only pattern basis warm-starting is built for. Thread the
  // previous optimal basis into the next solve (BCERT_LP_WARM=0 or
  // SynthesisOptions::warm_start=false reverts to cold starts). The
  // Engine extends the chain across scenarios via hooks.warm_basis_io.
  const bool warm = lp_warm_start_enabled(options_.synthesis);
  lp::LpBasis warm_basis;
  if (warm && hooks_.warm_basis_io != nullptr) {
    warm_basis = *hooks_.warm_basis_io;
  }
  const auto finish_generator_phase = [&](VerifyResult& r) {
    r.timings.generator_time_s = seconds_since(t_gen);
    r.timings.total_time_s = seconds_since(t_start);
  };
  for (int iter = 0; iter < options_.max_candidate_iterations; ++iter) {
    report_progress(JobPhase::kCandidateLoop, iter + 1, 0);
    if (interrupted(result)) {
      finish_generator_phase(result);
      return result;
    }
    ++result.timings.candidate_iterations;

    const auto t_lp = clock::now();
    SynthesisOptions sopts = options_.synthesis;
    if (warm) sopts.simplex.warm_start = std::move(warm_basis);
    // LP-heavy candidates honor the job's deadline/cancel from inside
    // the pivot loops: an interrupted solve reports infeasible-shaped
    // output, which the branch below re-attributes via interrupted().
    if (hooks_.cancel != nullptr || hooks_.has_deadline) {
      sopts.simplex.interrupt = [this] {
        if (hooks_.cancel != nullptr && hooks_.cancel->cancelled()) {
          return true;
        }
        return hooks_.has_deadline && clock::now() >= hooks_.deadline;
      };
    }
    const bool warm_supplied = warm && !sopts.simplex.warm_start.empty();
    const PipelineSynthesis<Form> synth =
        Traits::synthesize(samples, *this, sopts);
    if (warm_supplied && !synth.lp_warm_started) {
      // Ladder rung: the supplied basis was stale/singular and the
      // solver silently cold-started.
      degrade_.lp_cold.fetch_add(1, std::memory_order_relaxed);
    }
    warm_basis = synth.basis;
    if (warm && hooks_.warm_basis_io != nullptr) {
      *hooks_.warm_basis_io = warm_basis;
    }
    result.timings.lp_time_s += seconds_since(t_lp);
    ++result.timings.lp_solves;

    if (!synth.feasible) {
      // A deadline/cancel interrupt surfaces as an unfinished LP; check
      // it first so the result carries the real cause, not a spurious
      // kLpInfeasible.
      if (interrupted(result)) {
        finish_generator_phase(result);
        return result;
      }
      result.status = VerifyStatus::kLpInfeasible;
      // Surface the binding samples as counterexamples: they locate
      // where the closed loop resists *every* template candidate.
      result.counterexamples = synth.binding_states;
      finish_generator_phase(result);
      return result;
    }
    result.lp_margin = synth.margin;
    Traits::store_generator(result, *synth.candidate);

    const auto t_smt = clock::now();
    smt::IcpResult check = check_decrease(*synth.candidate);
    ++result.timings.smt5_queries;
    // δ-refinement: re-query with tighter δ while the witness is a
    // spurious artifact of interval slack (numeric Lie below −γ).
    double delta = options_.icp.delta;
    while (options_.adaptive_delta &&
           check.verdict == smt::SatResult::kDeltaSat &&
           delta > options_.min_delta &&
           numeric_lie(*synth.candidate, check.witness_point()) <
               -options_.gamma) {
      delta *= options_.delta_shrink;
      check = check_decrease(*synth.candidate, delta);
      ++result.timings.smt5_queries;
    }
    result.timings.smt5_time_s += seconds_since(t_smt);

    if (check.verdict == smt::SatResult::kUnknown) {
      if (!interrupted(result)) result.status = unknown_status();
      finish_generator_phase(result);
      return result;
    }
    if (check.is_unsat()) {
      generator = *synth.candidate;
      break;
    }

    // CEX: simulate from the witness and extend the sample set.
    const linalg::Vector cex = check.witness_point();
    result.counterexamples.push_back(cex);
    const auto t_sim = clock::now();
    const auto s = simulate_samples(cex);
    result.timings.simulation_time_s += seconds_since(t_sim);
    samples.insert(samples.end(), s.begin(), s.end());
    if (s.empty()) {
      // Witness immediately left the domain; at least pin the point
      // itself so the LP sees the violation.
      samples.push_back({cex, problem_.sim_field(cex)});
    }
  }
  result.timings.generator_time_s = seconds_since(t_gen);

  if (!generator) {
    result.status = VerifyStatus::kMaxCandidateIterations;
    result.timings.total_time_s = seconds_since(t_start);
    return result;
  }

  // ---- Level-set selection + SMT (6) & (7) -------------------------------
  const auto t_level = clock::now();
  report_progress(JobPhase::kLevelSet, result.timings.candidate_iterations,
                  0);
  const auto finish_level_phase = [&](VerifyResult& r) {
    r.timings.level_set_time_s = seconds_since(t_level);
    r.timings.total_time_s = seconds_since(t_start);
  };
  if (interrupted(result)) {
    finish_level_phase(result);
    return result;
  }

  // Domain-only dimensions must be flow-invariant, otherwise
  // trajectories could leave the region where the decrease condition
  // was proven.
  if (problem_.has_invariant_dims()) {
    const smt::IcpResult inv = check_domain_invariance();
    if (inv.verdict == smt::SatResult::kUnknown) {
      if (!interrupted(result)) result.status = unknown_status();
      finish_level_phase(result);
      return result;
    }
    if (inv.is_sat()) {
      result.status = VerifyStatus::kDomainNotInvariant;
      finish_level_phase(result);
      return result;
    }
  }

  const auto window = level_window(*generator);
  if (!window) {
    result.status = VerifyStatus::kLevelSetFailed;
    finish_level_phase(result);
    return result;
  }
  // Shrink the analytic window slightly so both SMT queries have margin.
  double lo = window->first * (1.0 + options_.level_margin);
  double hi = window->second * (1.0 - options_.level_margin);
  if (!(lo < hi)) {
    result.status = VerifyStatus::kLevelSetFailed;
    finish_level_phase(result);
    return result;
  }

  double level = std::sqrt(lo * hi);  // geometric midpoint first
  bool proved = false;
  for (int iter = 0; iter < options_.max_level_iterations; ++iter) {
    report_progress(JobPhase::kLevelSet, result.timings.candidate_iterations,
                    iter + 1);
    if (interrupted(result)) break;
    const smt::IcpResult init_check =
        check_initial_contained(*generator, level);
    if (init_check.verdict == smt::SatResult::kUnknown) {
      if (!interrupted(result)) result.status = unknown_status();
      break;
    }
    if (init_check.is_sat()) {
      // Some initial state escapes L: raise ℓ.
      lo = level;
      level = std::sqrt(lo * hi);
      continue;
    }
    const smt::IcpResult unsafe_check =
        check_level_exclusion(*generator, level);
    if (unsafe_check.verdict == smt::SatResult::kUnknown) {
      if (!interrupted(result)) result.status = unknown_status();
      break;
    }
    if (unsafe_check.is_sat()) {
      // L reaches into U: lower ℓ.
      hi = level;
      level = std::sqrt(lo * hi);
      continue;
    }
    proved = true;
    break;
  }
  finish_level_phase(result);

  if (proved) {
    result.status = VerifyStatus::kSafe;
    result.level = level;
  } else if (result.status != VerifyStatus::kSolverBudget &&
             result.status != VerifyStatus::kResourceExhausted &&
             result.status != VerifyStatus::kCancelled &&
             result.status != VerifyStatus::kDeadlineExceeded) {
    result.status = VerifyStatus::kLevelSetFailed;
  }
  report_progress(JobPhase::kDone, result.timings.candidate_iterations, 0);
  return result;
}

template class BarrierPipeline<QuadraticForm>;
template class BarrierPipeline<PolynomialForm>;

}  // namespace bcert::core
