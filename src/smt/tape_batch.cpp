#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/core/fault.h"
#include "src/core/runtime_config.h"
#include "src/expr/eval.h"
#include "src/smt/projections.h"
#include "src/smt/tape.h"
#include "src/smt/tape_batch_kernels.h"
#include "src/smt/tape_kernels.h"

/// \file tape_batch.cpp
/// \brief Batched (structure-of-arrays) execution of a compiled HC4 tape.
///
/// One batch register slot holds the same DAG node's enclosure for every
/// box in a sibling group, as interleaved [lo, hi] lanes. The sweeps run
/// the tape's instruction stream once per pass and apply each
/// instruction across all lanes, which amortizes instruction decode and
/// lets the kAdd forward/backward kernels run two boxes per 256-bit AVX2
/// operation. Every lane executes exactly the arithmetic the scalar
/// sweeps would execute for that box — same helpers, same operand
/// order, same early-out structure per lane — so surviving lanes are
/// bit-identical to scalar contraction (checked by the batch
/// differential fuzz suite at every available SIMD tier).

namespace bcert::smt {

using expr::Op;
using interval::BoxBatch;
using interval::Interval;

namespace {

inline Interval get_iv(const double* slot, std::size_t l) {
  return Interval(slot[2 * l], slot[2 * l + 1]);
}

inline void set_iv(double* slot, std::size_t l, const Interval& v) {
  slot[2 * l] = v.lo();
  slot[2 * l + 1] = v.hi();
}

// --- portable scalar lane kernels -------------------------------------------
// Bit-for-bit twins of tkern::add_iv / tkern::refine_sub (which the fuzz
// suite proved identical to the tree walk): outward rounding via
// prev/next_float, and the maxpd/minpd operand-order/NaN semantics of
// the SSE2 intersect spelled out as conditionals. Only compiled where
// the scalar tape itself uses those kernels (on other targets the tape's
// kAdd runs the generic path, and so must every batch tier).

#if BCERT_TAPE_SSE2
void forward_add_scalar(double* dst, const double* a, const double* b,
                        std::size_t lanes) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t l = 0; l < lanes; ++l) {
    const double alo = a[2 * l], ahi = a[2 * l + 1];
    const double blo = b[2 * l], bhi = b[2 * l + 1];
    if (alo > ahi || blo > bhi) {  // either operand empty
      dst[2 * l] = kInf;
      dst[2 * l + 1] = -kInf;
    } else {
      dst[2 * l] = interval::prev_float(alo + blo);
      dst[2 * l + 1] = interval::next_float(ahi + bhi);
    }
  }
}

void refine_sub_scalar(double* t, const double* r, const double* s,
                       std::uint8_t* empty, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    const double dlo = interval::prev_float(r[2 * l] - s[2 * l + 1]);
    const double dhi = interval::next_float(r[2 * l + 1] - s[2 * l]);
    // maxpd/minpd twins: (x OP y) ? x : y returns y on NaN, like SSE2.
    const double lo = t[2 * l] > dlo ? t[2 * l] : dlo;
    const double hi = t[2 * l + 1] < dhi ? t[2 * l + 1] : dhi;
    t[2 * l] = lo;
    t[2 * l + 1] = hi;
    if (lo > hi) empty[l] = 1;
  }
}

void forward_add_sse2(double* dst, const double* a, const double* b,
                      std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    set_iv(dst, l, tkern::add_iv(get_iv(a, l), get_iv(b, l)));
  }
}

void refine_sub_sse2(double* t, const double* r, const double* s,
                     std::uint8_t* empty, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    Interval target = get_iv(t, l);
    const bool ok =
        tkern::refine_sub(target, _mm_loadu_pd(r + 2 * l), get_iv(s, l));
    set_iv(t, l, target);
    if (!ok) empty[l] = 1;
  }
}

// Scalar twins of the branchy forward lanes: exactly the operations the
// scalar tape sweep runs for these instructions, applied per masked
// lane — trivially bit-identical, and the reference the SSE2/AVX2
// variants are fuzz-compared against.

void forward_mul_const_scalar(double* dst, const double* x, double w,
                              const std::uint8_t* mask, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    if (mask[l]) set_iv(dst, l, tkern::mul_const(get_iv(x, l), w));
  }
}

void forward_mul_scalar(double* dst, const double* a, const double* b,
                        const std::uint8_t* mask, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    if (mask[l]) set_iv(dst, l, get_iv(a, l) * get_iv(b, l));
  }
}

void forward_div_scalar(double* dst, const double* a, const double* b,
                        const std::uint8_t* mask, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    if (mask[l]) set_iv(dst, l, get_iv(a, l) / get_iv(b, l));
  }
}

void forward_mul_const_sse2(double* dst, const double* x, double w,
                            const std::uint8_t* mask, std::size_t lanes) {
  const __m128d vw = _mm_set1_pd(w);
  const bool negative = w < 0.0;
  for (std::size_t l = 0; l < lanes; ++l) {
    if (mask[l]) {
      set_iv(dst, l, tkern::mul_const_iv(get_iv(x, l), vw, negative));
    }
  }
}

void forward_mul_sse2(double* dst, const double* a, const double* b,
                      const std::uint8_t* mask, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    if (mask[l]) set_iv(dst, l, tkern::mul_iv(get_iv(a, l), get_iv(b, l)));
  }
}

void forward_div_sse2(double* dst, const double* a, const double* b,
                      const std::uint8_t* mask, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    if (mask[l]) set_iv(dst, l, tkern::div_iv(get_iv(a, l), get_iv(b, l)));
  }
}

const bkern::LaneKernels kScalarKernels{
    forward_add_scalar, refine_sub_scalar, forward_mul_const_scalar,
    forward_mul_scalar, forward_div_scalar};
const bkern::LaneKernels kSse2Kernels{
    forward_add_sse2, refine_sub_sse2, forward_mul_const_sse2,
    forward_mul_sse2, forward_div_sse2};
#endif  // BCERT_TAPE_SSE2
const bkern::LaneKernels kGenericKernels{nullptr, nullptr, nullptr, nullptr,
                                         nullptr};

bool cpu_has_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const bkern::LaneKernels& kernels_for(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAvx2:
      if (const bkern::LaneKernels* k = bkern::avx2_kernels()) return *k;
      break;
    case SimdTier::kSse2:
#if BCERT_TAPE_SSE2
      return kSse2Kernels;
#else
      break;
#endif
    case SimdTier::kScalar:
#if BCERT_TAPE_SSE2
      return kScalarKernels;
#else
      // Without SSE2 the scalar tape runs the generic per-lane path for
      // kAdd; the batch must match it, not the SSE2-twin kernels.
      return kGenericKernels;
#endif
  }
  return kGenericKernels;
}

}  // namespace

const char* simd_tier_name(SimdTier t) {
  switch (t) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kSse2: return "sse2";
    case SimdTier::kAvx2: return "avx2";
  }
  return "?";
}

bool simd_tier_available(SimdTier t) {
  switch (t) {
    case SimdTier::kScalar: return true;
    case SimdTier::kSse2: return BCERT_TAPE_SSE2 != 0;
    case SimdTier::kAvx2:
      return bkern::avx2_kernels() != nullptr && cpu_has_avx2();
  }
  return false;
}

SimdTier resolve_simd_tier() {
  const SimdTier best = simd_tier_available(SimdTier::kAvx2)
                            ? SimdTier::kAvx2
                        : simd_tier_available(SimdTier::kSse2)
                            ? SimdTier::kSse2
                            : SimdTier::kScalar;
  SimdTier requested = best;
  switch (core::RuntimeConfig::active().icp_simd) {
    case core::ConfigSimd::kAuto: return best;
    case core::ConfigSimd::kAvx2: requested = SimdTier::kAvx2; break;
    case core::ConfigSimd::kSse2: requested = SimdTier::kSse2; break;
    case core::ConfigSimd::kScalar: requested = SimdTier::kScalar; break;
  }
  if (simd_tier_available(requested)) return requested;
  // Availability depends on this build/CPU, which RuntimeConfig cannot
  // know — fall back here, warning once per process.
  static const bool warned = [&] {
    std::fprintf(stderr,
                 "bcert: BCERT_ICP_SIMD=\"%s\" not available on this "
                 "build/CPU; using %s\n",
                 simd_tier_name(requested), simd_tier_name(best));
    return true;
  }();
  (void)warned;
  return best;
}

Hc4Tape::BatchRegisters Hc4Tape::make_batch_registers(
    std::size_t lanes) const {
  BatchRegisters regs;
  regs.lanes = lanes == 0 ? 1 : lanes;
  // Pad the lane count to 4 so each slot row (2 doubles per lane) starts
  // 64-byte aligned when the base allocation is.
  const std::size_t padded = (regs.lanes + 3) & ~std::size_t{3};
  regs.stride = 2 * padded;
  regs.data = linalg::aligned_doubles(num_slots_ * regs.stride);
  return regs;
}

void Hc4Tape::contract_fixpoint_batch(BoxBatch& batch, BatchRegisters& regs,
                                      int max_passes, double ratio,
                                      LaneOutcome* out) const {
  contract_fixpoint_batch(batch, regs, max_passes, ratio, out,
                          resolve_simd_tier());
}

void Hc4Tape::contract_fixpoint_batch(BoxBatch& batch, BatchRegisters& regs,
                                      int max_passes, double ratio,
                                      LaneOutcome* out, SimdTier tier) const {
  const std::size_t n = batch.size();
  if (n == 0) return;
  if (regs.lanes < n || regs.data == nullptr) {
    regs = make_batch_registers(std::max(n, regs.lanes));
  }
  const std::size_t stride = regs.stride;
  double* const data = regs.data.get();
  const bkern::LaneKernels& kn = kernels_for(tier);
  const std::size_t nroots = root_slots_.size();
  const std::size_t nvars = var_slots_.size();

  // Per-lane control state, living in the reusable register-file scratch
  // (assign() reuses capacity after the first round — no allocator
  // traffic in the frontier hot loop). `active` lanes are still
  // iterating fixpoint passes; `alive` lanes have not been proven empty;
  // `roots_valid` lanes retired on a no-change pass whose forward
  // enclosures (saved in `roots`) therefore describe the final box.
  std::vector<std::uint8_t>& active = regs.active;
  std::vector<std::uint8_t>& alive = regs.alive;
  std::vector<std::uint8_t>& any_change = regs.any_change;
  std::vector<std::uint8_t>& roots_valid = regs.roots_valid;
  std::vector<std::uint8_t>& pass_alive = regs.pass_alive;
  std::vector<std::uint8_t>& leg_empty = regs.leg_empty;
  std::vector<double>& before = regs.before;
  std::vector<Interval>& roots = regs.roots;
  active.assign(n, 1);
  alive.assign(n, 1);
  any_change.assign(n, 0);
  roots_valid.assign(n, 0);
  pass_alive.assign(n, 0);
  leg_empty.assign(n, 0);
  before.assign(n, 0.0);
  roots.assign(n * nroots, Interval());

  // The per-lane sweeps take a lane mask: lanes that retired (pruned or
  // reached their fixpoint) in an earlier pass are skipped — their
  // registers are garbage that is never read. Only the branchless kAdd
  // array kernels run full-width regardless (masked lanes' outputs are
  // discarded).
  const auto load_leaves = [&](const std::uint8_t* mask) {
    for (std::size_t i = 0; i < const_slots_.size(); ++i) {
      double* const slot = data + const_slots_[i] * stride;
      // Re-seeded every pass: the backward sweep narrows constant leaf
      // slots too, and those must not leak into the next forward pass.
      for (std::size_t l = 0; l < n; ++l) {
        if (mask[l]) set_iv(slot, l, const_values_[i]);
      }
    }
    for (std::size_t i = 0; i < nvars; ++i) {
      double* const slot = data + var_slots_[i] * stride;
      const double* const lo = batch.lo_plane(var_dims_[i]);
      const double* const hi = batch.hi_plane(var_dims_[i]);
      for (std::size_t l = 0; l < n; ++l) {
        if (!mask[l]) continue;
        slot[2 * l] = lo[l];
        slot[2 * l + 1] = hi[l];
      }
    }
  };

  const auto forward = [&](const std::uint8_t* mask) {
    const TapeInstr* const code = code_.data();
    const MulConstSpec* const mc = mul_const_.data();
    const std::size_t ni = code_.size();
    for (std::size_t i = 0; i < ni; ++i) {
      const TapeInstr ins = code[i];
      double* const dst = data + ins.dst * stride;
      if (ins.spec == kSpecMulConst) {
        const MulConstSpec& sp = mc[ins.exponent];
        const double* const x = data + sp.var_slot * stride;
        if (kn.forward_mul_const != nullptr) {
          kn.forward_mul_const(dst, x, sp.w, mask, n);
          continue;
        }
        for (std::size_t l = 0; l < n; ++l) {
          if (mask[l]) set_iv(dst, l, tkern::mul_const(get_iv(x, l), sp.w));
        }
        continue;
      }
      const double* const a = data + ins.a * stride;
      if (ins.op == Op::kAdd && kn.forward_add != nullptr) {
        kn.forward_add(dst, a, data + ins.b * stride, n);
        continue;
      }
      if (ins.op == Op::kMul && kn.forward_mul != nullptr) {
        kn.forward_mul(dst, a, data + ins.b * stride, mask, n);
        continue;
      }
      if (ins.op == Op::kDiv && kn.forward_div != nullptr) {
        kn.forward_div(dst, a, data + ins.b * stride, mask, n);
        continue;
      }
      if (ins.b != kNoSlot) {
        const double* const b = data + ins.b * stride;
        for (std::size_t l = 0; l < n; ++l) {
          if (!mask[l]) continue;
          set_iv(dst, l,
                 expr::apply_interval_op(ins.op, ins.exponent, get_iv(a, l),
                                         get_iv(b, l)));
        }
      } else {
        for (std::size_t l = 0; l < n; ++l) {
          if (!mask[l]) continue;
          set_iv(dst, l,
                 expr::apply_interval_op(ins.op, ins.exponent, get_iv(a, l),
                                         Interval::empty()));
        }
      }
    }
  };

  for (int pass = 0; pass < max_passes; ++pass) {
    bool some_active = false;
    for (std::size_t l = 0; l < n; ++l) some_active |= active[l] != 0;
    if (!some_active) break;

    for (std::size_t l = 0; l < n; ++l) {
      if (active[l]) before[l] = batch.perimeter(l);
    }

    // --- one contract pass over the still-active lanes --------------------
    load_leaves(active.data());
    forward(active.data());

    // Save the forward root enclosures (pre-intersection) — these are
    // what certainly_satisfied consumes when this turns out to be the
    // lane's final (fixpoint) pass.
    for (std::size_t l = 0; l < n; ++l) {
      if (!active[l]) continue;
      for (std::size_t i = 0; i < nroots; ++i) {
        roots[l * nroots + i] = get_iv(data + root_slots_[i] * stride, l);
      }
    }

    // Intersect each constraint root with its feasible set, per lane.
    std::copy(active.begin(), active.end(), pass_alive.begin());
    for (std::size_t l = 0; l < n; ++l) {
      if (!pass_alive[l]) continue;
      for (std::size_t i = 0; i < nroots; ++i) {
        double* const slot = data + root_slots_[i] * stride;
        const Interval root = intersect(get_iv(slot, l), root_feasible_[i]);
        set_iv(slot, l, root);
        if (root.is_empty()) {
          pass_alive[l] = 0;
          break;
        }
      }
    }

    // Backward sweep, instruction-major across lanes.
    {
      core::FaultRegistry::check(core::FaultPoint::kHc4Backward);
      const TapeInstr* const code = code_.data();
      const MulConstSpec* const mc = mul_const_.data();
      for (std::size_t i = code_.size(); i-- > 0;) {
        const TapeInstr ins = code[i];
        double* const dst = data + ins.dst * stride;
        if (ins.spec == kSpecMulConst) {
          const MulConstSpec& sp = mc[ins.exponent];
          double* const xp = data + sp.var_slot * stride;
          for (std::size_t l = 0; l < n; ++l) {
            if (!pass_alive[l]) continue;
            const Interval r = get_iv(dst, l);
            if (r.is_empty()) {
              pass_alive[l] = 0;
              continue;
            }
            Interval x = get_iv(xp, l);
            if (sp.var_is_a) {
              x = intersect(x, tkern::mul_rec(r, sp.rec, sp.w > 0.0));
              if (x.is_empty()) {
                pass_alive[l] = 0;
                continue;
              }
              set_iv(xp, l, x);
              if (!tkern::const_quotient_feasible(sp.w, r, x)) {
                pass_alive[l] = 0;
              }
            } else {
              if (!tkern::const_quotient_feasible(sp.w, r, x)) {
                pass_alive[l] = 0;
                continue;
              }
              x = intersect(x, tkern::mul_rec(r, sp.rec, sp.w > 0.0));
              if (x.is_empty()) {
                pass_alive[l] = 0;
                continue;
              }
              set_iv(xp, l, x);
            }
          }
          continue;
        }
        if (ins.op == Op::kAdd && kn.refine_sub != nullptr) {
          // Per-lane requirement-empty check, then both projection legs
          // across all lanes (dead lanes compute garbage, never read).
          for (std::size_t l = 0; l < n; ++l) {
            if (pass_alive[l] && dst[2 * l] > dst[2 * l + 1]) {
              pass_alive[l] = 0;
            }
          }
          double* const a = data + ins.a * stride;
          double* const b = data + ins.b * stride;
          std::fill(leg_empty.begin(), leg_empty.end(), 0);
          kn.refine_sub(a, dst, b, leg_empty.data(), n);
          kn.refine_sub(b, dst, a, leg_empty.data(), n);
          for (std::size_t l = 0; l < n; ++l) {
            if (leg_empty[l]) pass_alive[l] = 0;
          }
          continue;
        }
        double* const a = data + ins.a * stride;
        double* const b = ins.b != kNoSlot ? data + ins.b * stride : nullptr;
        for (std::size_t l = 0; l < n; ++l) {
          if (!pass_alive[l]) continue;
          const Interval r = get_iv(dst, l);
          if (r.is_empty()) {
            pass_alive[l] = 0;
            continue;
          }
          Interval av = get_iv(a, l);
          bool ok;
          if (b != nullptr && ins.b != ins.a) {
            Interval bv = get_iv(b, l);
            ok = detail::project_node(ins.op, ins.exponent, r, av, &bv);
            set_iv(b, l, bv);
          } else if (b != nullptr) {
            // a and b are the same slot: alias through one value, as the
            // scalar sweep's references do.
            ok = detail::project_node(ins.op, ins.exponent, r, av, &av);
          } else {
            ok = detail::project_node(ins.op, ins.exponent, r, av, nullptr);
          }
          set_iv(a, l, av);
          if (!ok) pass_alive[l] = 0;
        }
      }
    }

    // Read back narrowed variables and settle each lane's pass verdict.
    for (std::size_t l = 0; l < n; ++l) {
      if (!active[l]) continue;
      if (!pass_alive[l]) {
        out[l].result = ContractResult::kEmpty;
        active[l] = 0;
        alive[l] = 0;
        continue;
      }
      bool changed = false;
      bool emptied = false;
      for (std::size_t i = 0; i < nvars; ++i) {
        const std::uint32_t dim = var_dims_[i];
        const Interval narrowed = intersect(
            batch.dim(l, dim), get_iv(data + var_slots_[i] * stride, l));
        if (narrowed.is_empty()) {
          emptied = true;
          break;
        }
        if (!(narrowed == batch.dim(l, dim))) {
          batch.set_dim(l, dim, narrowed);
          changed = true;
        }
      }
      if (emptied) {
        out[l].result = ContractResult::kEmpty;
        active[l] = 0;
        alive[l] = 0;
        continue;
      }
      if (!changed) {
        // Fixpoint: this pass's forward enclosures describe the final
        // box, so certainly_satisfied below is free (scalar cache twin).
        out[l].result = any_change[l] ? ContractResult::kContracted
                                      : ContractResult::kNoChange;
        roots_valid[l] = 1;
        active[l] = 0;
        continue;
      }
      any_change[l] = 1;
      const double after = batch.perimeter(l);
      if (before[l] <= 0.0 || (before[l] - after) / before[l] < ratio) {
        out[l].result = ContractResult::kContracted;
        active[l] = 0;
      }
    }
  }

  // Lanes that ran out of passes while still improving.
  for (std::size_t l = 0; l < n; ++l) {
    if (active[l]) {
      out[l].result = any_change[l] ? ContractResult::kContracted
                                    : ContractResult::kNoChange;
    }
  }

  // certainly_satisfied per surviving lane: reuse the final fixpoint
  // pass's enclosures where valid, otherwise one forward-only sweep over
  // the contracted boxes (exactly the scalar roots_for semantics).
  std::vector<std::uint8_t>& need = regs.need;
  need.assign(n, 0);
  bool need_eval = false;
  for (std::size_t l = 0; l < n; ++l) {
    need[l] = alive[l] && !roots_valid[l];
    need_eval |= need[l] != 0;
  }
  if (need_eval) {
    load_leaves(need.data());
    forward(need.data());
    for (std::size_t l = 0; l < n; ++l) {
      if (!need[l]) continue;
      for (std::size_t i = 0; i < nroots; ++i) {
        roots[l * nroots + i] = get_iv(data + root_slots_[i] * stride, l);
      }
    }
  }
  for (std::size_t l = 0; l < n; ++l) {
    out[l].satisfied = false;
    if (!alive[l]) continue;
    bool sat = true;
    for (std::size_t i = 0; i < conjunction_.size(); ++i) {
      if (!conjunction_.constraints[i].certainly_satisfied(
              roots[l * nroots + i])) {
        sat = false;
        break;
      }
    }
    out[l].satisfied = sat;
  }
}

}  // namespace bcert::smt
