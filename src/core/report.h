#pragma once
/// \file report.h
/// \brief Human-readable and machine-readable certificate reports.
///
/// A safety proof is only useful if it can be communicated and audited.
/// This module renders a VerifyResult into (a) a plain-text report for
/// humans and (b) a single-object JSON document for toolchains, carrying
/// everything needed to independently re-check the certificate: the
/// model regions, γ/δ, the generator coefficients, the level, CEX
/// history and the timing breakdown.

#include <iosfwd>
#include <string>

#include "src/core/verify_types.h"

namespace bcert::core {

/// Extra context that the VerifyResult itself does not carry.
struct ReportContext {
  std::string system_name = "unnamed-system";
  std::string controller_description;
  double gamma = 1e-6;
  double delta = 1e-3;
};

/// Escapes \p s for inclusion inside a JSON string literal: quotes and
/// backslashes are backslash-escaped, \\n/\\r/\\t use their short forms
/// and every other control character (< 0x20) is emitted as \\u00XX.
/// Shared by the report writers and the Engine campaign summaries so
/// scenario names and error messages can never break the document.
std::string json_escape(const std::string& s);

/// Plain-text report (sections: verdict, certificate, procedure, timing).
void write_text_report(std::ostream& os, const VerifyResult& result,
                       const BarrierProblem& problem,
                       const ReportContext& context = {});

/// JSON report (stable key order; numbers at full precision).
void write_json_report(std::ostream& os, const VerifyResult& result,
                       const BarrierProblem& problem,
                       const ReportContext& context = {});

/// Convenience: JSON to string.
std::string json_report(const VerifyResult& result,
                        const BarrierProblem& problem,
                        const ReportContext& context = {});

/// JSON object for one VerifyResult alone (no problem regions, no
/// report context) — the building block of Engine campaign summaries
/// (CampaignResult::to_json). Covers both templates: whichever of
/// generator / poly_generator is set is rendered, with the template
/// kind recorded alongside.
void write_result_json(std::ostream& os, const VerifyResult& result);

/// Convenience: result JSON to string.
std::string result_json(const VerifyResult& result);

}  // namespace bcert::core
