// Tests for the core barrier-synthesis machinery: regions, quadratic
// forms, LP synthesis, and the end-to-end verifier (the paper's Fig. 1).
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "src/core/lp_synthesis.h"
#include "src/core/quadratic_form.h"
#include "src/core/region.h"
#include "src/core/verifier.h"
#include "src/dubins/error_dynamics.h"
#include "src/dubins/training.h"

namespace bcert::core {
namespace {

using linalg::Vector;
constexpr double kPi = 3.14159265358979323846;

TEST(Rect, ContainsAndVertices) {
  Rect r{{-1.0, -2.0}, {1.0, 2.0}};
  r.validate();
  EXPECT_TRUE(r.contains(Vector{0.0, 0.0}));
  EXPECT_FALSE(r.contains(Vector{1.5, 0.0}));
  const auto verts = r.vertices();
  EXPECT_EQ(verts.size(), 4u);
  EXPECT_EQ(r.center().raw(), (Vector{0.0, 0.0}).raw());
}

TEST(Rect, ValidateRejectsInverted) {
  Rect r{{1.0}, {-1.0}};
  EXPECT_THROW(r.validate(), std::invalid_argument);
}

TEST(Region, InsideRectConjunction) {
  expr::ExprPool pool;
  Rect r{{-1.0, -1.0}, {1.0, 1.0}};
  const smt::Conjunction c = inside_rect(pool, r);
  EXPECT_EQ(c.size(), 4u);
  // All constraints hold at the center, some fail outside.
  for (const smt::Constraint& k : c.constraints) {
    EXPECT_LE(pool.eval(k.lhs, Vector{0.0, 0.0}), 0.0);
  }
  bool violated = false;
  for (const smt::Constraint& k : c.constraints) {
    if (pool.eval(k.lhs, Vector{2.0, 0.0}) > 0.0) violated = true;
  }
  EXPECT_TRUE(violated);
}

TEST(Region, OutsideRectDnf) {
  expr::ExprPool pool;
  Rect r{{-1.0, -1.0}, {1.0, 1.0}};
  const smt::Dnf d = outside_rect(pool, r);
  EXPECT_EQ(d.disjuncts.size(), 4u);
  // At an outside point at least one disjunct holds.
  int holds = 0;
  for (const auto& disj : d.disjuncts) {
    bool all = true;
    for (const smt::Constraint& k : disj.constraints) {
      if (pool.eval(k.lhs, Vector{0.0, 3.0}) > 0.0) all = false;
    }
    if (all) ++holds;
  }
  EXPECT_GE(holds, 1);
}

TEST(QuadraticForm, ValueGradientMatrixConsistency) {
  // W = 2x² + 3xy + 4y².
  QuadraticForm w(2, Vector{2.0, 3.0, 4.0});
  const Vector x{1.0, -2.0};
  EXPECT_DOUBLE_EQ(w.value(x), 2.0 - 6.0 + 16.0);
  const Vector g = w.gradient(x);
  EXPECT_DOUBLE_EQ(g[0], 4.0 * 1.0 + 3.0 * (-2.0));  // 4x + 3y
  EXPECT_DOUBLE_EQ(g[1], 3.0 * 1.0 + 8.0 * (-2.0));  // 3x + 8y
  const linalg::Matrix p = w.matrix();
  EXPECT_DOUBLE_EQ(p(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(quadratic_form(x, p, x), w.value(x));
}

TEST(QuadraticForm, FromMatrixRoundTrip) {
  linalg::Matrix p{{2.0, 0.5}, {0.5, 1.0}};
  const QuadraticForm w = QuadraticForm::from_matrix(p);
  const Vector x{0.7, -1.1};
  EXPECT_NEAR(w.value(x), quadratic_form(x, p, x), 1e-14);
}

TEST(QuadraticForm, PositiveDefiniteness) {
  EXPECT_TRUE(QuadraticForm(2, Vector{1.0, 0.0, 1.0}).positive_definite());
  EXPECT_FALSE(QuadraticForm(2, Vector{1.0, 3.0, 1.0}).positive_definite());
  EXPECT_FALSE(QuadraticForm(2, Vector{-1.0, 0.0, 1.0}).positive_definite());
}

TEST(QuadraticForm, SymbolicMatchesNumeric) {
  QuadraticForm w(2, Vector{0.5, 0.3, 1.0});
  expr::ExprPool pool;
  const expr::ExprId e = w.to_expr(pool);
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> d(-3.0, 3.0);
  for (int i = 0; i < 50; ++i) {
    const Vector x{d(rng), d(rng)};
    EXPECT_NEAR(pool.eval(e, x), w.value(x), 1e-12);
  }
}

TEST(QuadraticForm, LevelGeometryUnitCircle) {
  // W = x² + y²: level ℓ is the disk of radius √ℓ.
  QuadraticForm w(2, Vector{1.0, 0.0, 1.0});
  Rect x0{{-0.5, -0.5}, {0.5, 0.5}};
  EXPECT_NEAR(w.min_level_containing(x0), 0.5, 1e-12);  // corner at r²=0.5
  const Halfspace hs{0, +1, 2.0};  // x ≥ 2
  const auto cap = w.max_level_avoiding(hs);
  ASSERT_TRUE(cap.has_value());
  EXPECT_NEAR(*cap, 4.0, 1e-9);  // disk of radius 2 touches x=2
  const auto bbox = w.level_set_bounding_box(1.0);
  ASSERT_TRUE(bbox.has_value());
  EXPECT_NEAR(bbox->hi[0], 1.0, 1e-9);
  EXPECT_NEAR(bbox->hi[1], 1.0, 1e-9);
}

TEST(QuadraticForm, LevelGeometryTiltedEllipse) {
  // W = x² + xy + y² (tilted). Check bound formula against sampling.
  QuadraticForm w(2, Vector{1.0, 1.0, 1.0});
  const Halfspace hs{0, +1, 3.0};
  const auto cap = w.max_level_avoiding(hs);
  ASSERT_TRUE(cap.has_value());
  // Minimum of W on the line x=3: min_y 9 + 3y + y² at y=-1.5 → 9-2.25.
  EXPECT_NEAR(*cap, 6.75, 1e-9);
}

TEST(QuadraticForm, Boundary2dLiesOnLevelSet) {
  QuadraticForm w(2, Vector{0.8, 0.4, 1.2});
  const auto pts = w.boundary_points_2d(2.0, 64);
  ASSERT_GT(pts.size(), 32u);
  for (const auto& p : pts) EXPECT_NEAR(w.value(p), 2.0, 1e-9);
}

TEST(LpSynthesis, RecoverLyapunovForLinearSystem) {
  // ẋ = -x, ẏ = -2y: W = a x² + c y² works for any a,c > 0.
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> d(-2.0, 2.0);
  std::vector<FieldSample> samples;
  for (int i = 0; i < 120; ++i) {
    Vector x{d(rng), d(rng)};
    samples.push_back({x, Vector{-x[0], -2.0 * x[1]}});
  }
  const SynthesisResult r = synthesize_candidate(samples, 2);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.margin, 0.1);
  EXPECT_TRUE(r.candidate.positive_definite());
  // Decrease along the field at fresh points.
  for (int i = 0; i < 100; ++i) {
    Vector x{d(rng), d(rng)};
    if (x.norm() < 1e-3) continue;
    const Vector f{-x[0], -2.0 * x[1]};
    EXPECT_LT(dot(r.candidate.gradient(x), f), 0.0);
  }
}

TEST(LpSynthesis, InfeasibleForExpandingSystem) {
  // ẋ = +x: no positive decreasing quadratic exists.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> d(0.5, 2.0);
  std::vector<FieldSample> samples;
  for (int i = 0; i < 60; ++i) {
    Vector x{d(rng)};
    samples.push_back({x, Vector{x[0]}});
  }
  const SynthesisResult r = synthesize_candidate(samples, 1);
  EXPECT_FALSE(r.feasible);
}

TEST(LpSynthesis, SamplesFromTraceClipsToDomain) {
  ode::Trace t;
  for (int i = 0; i <= 20; ++i) {
    t.push_back(0.1 * i, Vector{static_cast<double>(i), 0.0});
  }
  const ode::VectorField f = [](const Vector& x) {
    return Vector{-x[0], -x[1]};
  };
  Rect domain{{-5.0, -5.0}, {5.0, 5.0}};
  const auto samples = samples_from_trace(t, f, domain, 100);
  for (const FieldSample& s : samples) {
    EXPECT_TRUE(domain.contains(s.x));
  }
  EXPECT_LT(samples.size(), t.size());
}

// ---- End-to-end verifier ------------------------------------------------

BarrierProblem dubins_problem(expr::ExprPool& pool,
                              const nn::FeedforwardNet& controller) {
  const dubins::ErrorModel model{1.0, 0.0};
  BarrierProblem p;
  p.pool = &pool;
  p.sim_field = dubins::closed_loop_field(model, controller);
  p.sym_field = dubins::closed_loop_field_expr(model, controller, pool);
  p.initial_set = {{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
  p.safe_rect = {{-5.0, -(kPi / 2.0 - 0.01)}, {5.0, kPi / 2.0 - 0.01}};
  return p;
}

TEST(Verifier, DubinsDistilledControllerIsSafe) {
  expr::ExprPool pool;
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10);
  BarrierVerifier verifier(dubins_problem(pool, controller), {});
  const VerifyResult r = verifier.verify();
  ASSERT_EQ(r.status, VerifyStatus::kSafe) << verify_status_name(r.status);
  ASSERT_TRUE(r.generator.has_value());
  EXPECT_TRUE(r.generator->positive_definite());
  EXPECT_GT(r.level, 0.0);

  // The certificate must separate X0 from U: every X0 vertex inside L,
  // every safe-rect boundary sample outside L.
  const Rect x0 = verifier.problem().initial_set;
  for (const Vector& v : x0.vertices()) {
    EXPECT_LE(r.generator->value(v), r.level);
  }
  const Rect s = verifier.problem().safe_rect;
  for (double th = s.lo[1]; th <= s.hi[1]; th += 0.1) {
    EXPECT_GT(r.generator->value(Vector{s.lo[0], th}), r.level);
    EXPECT_GT(r.generator->value(Vector{s.hi[0], th}), r.level);
  }
}

TEST(Verifier, CertificateDecreasesAlongTrajectories) {
  expr::ExprPool pool;
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 20);
  const BarrierProblem problem = dubins_problem(pool, controller);
  BarrierVerifier verifier(problem, {});
  const VerifyResult r = verifier.verify();
  ASSERT_TRUE(r.safe());

  // Simulate from X0 corners: W along the trajectory never rises above ℓ
  // and the state never reaches U.
  for (const Vector& v : problem.initial_set.vertices()) {
    ode::IntegrateOptions iopts;
    iopts.step = 0.01;
    iopts.t_end = 30.0;
    const ode::Trace t = integrate_rk4(problem.sim_field, v, iopts);
    for (std::size_t i = 0; i < t.size(); ++i) {
      EXPECT_LE(r.generator->value(t.state(i)), r.level + 1e-6);
      EXPECT_TRUE(problem.safe_rect.contains(t.state(i)));
    }
  }
}

TEST(Verifier, UnsafeControllerIsNotCertified) {
  // A destabilizing controller (wrong sign) must not be declared safe.
  nn::FeedforwardNet bad = nn::FeedforwardNet::single_hidden(2, 4, 1);
  // u = tanh(-(0.5 d + 2 th)) via explicit weights: hidden = identity-ish.
  bad.layer(0).weights = linalg::Matrix{{-0.5, -2.0}, {0.0, 0.0}};
  bad.layer(0).bias = Vector{0.0, 0.0};
  bad.layer(1).weights = linalg::Matrix{{5.0, 0.0}};
  bad.layer(1).bias = Vector{0.0};
  expr::ExprPool pool;
  VerifierOptions opts;
  opts.max_candidate_iterations = 3;  // keep the test fast
  BarrierVerifier verifier(dubins_problem(pool, bad), opts);
  const VerifyResult r = verifier.verify();
  EXPECT_NE(r.status, VerifyStatus::kSafe);
}

TEST(Verifier, LinearStableSystemDirectly) {
  // Bypass the NN entirely: ẋ = -x - y, ẏ = x - y (stable focus).
  expr::ExprPool pool;
  BarrierProblem p;
  p.pool = &pool;
  p.sim_field = [](const Vector& x) {
    return Vector{-x[0] - x[1], x[0] - x[1]};
  };
  const expr::ExprId x = pool.var(0), y = pool.var(1);
  p.sym_field = {pool.sub(pool.neg(x), y), pool.sub(x, y)};
  p.initial_set = {{-0.5, -0.5}, {0.5, 0.5}};
  p.safe_rect = {{-3.0, -3.0}, {3.0, 3.0}};
  BarrierVerifier verifier(p, {});
  const VerifyResult r = verifier.verify();
  ASSERT_EQ(r.status, VerifyStatus::kSafe) << verify_status_name(r.status);
}

TEST(Verifier, ValidatesProblemShape) {
  expr::ExprPool pool;
  BarrierProblem p;
  p.pool = &pool;
  p.sim_field = [](const Vector& x) { return x; };
  p.sym_field = {pool.var(0)};
  p.initial_set = {{-2.0}, {2.0}};
  p.safe_rect = {{-1.0}, {1.0}};  // X0 not inside safe rect
  EXPECT_THROW(BarrierVerifier(p, {}), std::invalid_argument);
}

TEST(Verifier, CheckDecreaseFindsCexForBadCandidate) {
  expr::ExprPool pool;
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10);
  BarrierVerifier verifier(dubins_problem(pool, controller), {});
  // W = d² alone is not a generator (ignores θ dynamics): expect SAT.
  QuadraticForm bad(2, Vector{1.0, 0.0, 0.0});
  const smt::IcpResult r = verifier.check_decrease(bad);
  EXPECT_TRUE(r.is_sat());
}

TEST(Verifier, LevelChecksBracketCorrectly) {
  expr::ExprPool pool;
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10);
  BarrierVerifier verifier(dubins_problem(pool, controller), {});
  // A PD form; compute its analytic window and test the SMT checks at
  // levels inside/outside the window.
  QuadraticForm w(2, Vector{0.5, 0.3, 1.0});
  const auto window = verifier.level_window(w);
  ASSERT_TRUE(window.has_value());
  const auto [lo, hi] = *window;
  EXPECT_LT(lo, hi);
  // ℓ below lo: some X0 vertex is outside L → (6) must be SAT.
  EXPECT_TRUE(verifier.check_initial_contained(w, 0.5 * lo).is_sat());
  // ℓ in the middle: both checks UNSAT.
  const double mid = std::sqrt(lo * hi);
  EXPECT_TRUE(verifier.check_initial_contained(w, mid).is_unsat());
  EXPECT_TRUE(verifier.check_unsafe_disjoint(w, mid).is_unsat());
  // ℓ above hi: L pokes into U → (7) must be SAT.
  EXPECT_TRUE(verifier.check_unsafe_disjoint(w, hi * 1.2).is_sat());
}

// Property sweep: verified certificates really are invariant under
// random simulation, across controller widths and seeds.
struct SweepParam {
  std::size_t hidden;
  unsigned seed;
};

class CertificateInvariance : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CertificateInvariance, NoTrajectoryEscapesLevelSet) {
  const auto [hidden, seed] = GetParam();
  expr::ExprPool pool;
  const nn::FeedforwardNet controller = dubins::distill_controller(
      dubins::proportional_teacher(), hidden, seed);
  const BarrierProblem problem = dubins_problem(pool, controller);
  BarrierVerifier verifier(problem, {});
  const VerifyResult r = verifier.verify();
  ASSERT_TRUE(r.safe()) << verify_status_name(r.status);

  std::mt19937 rng(seed);
  const Rect x0 = problem.initial_set;
  std::uniform_real_distribution<double> dd(x0.lo[0], x0.hi[0]);
  std::uniform_real_distribution<double> dt(x0.lo[1], x0.hi[1]);
  for (int k = 0; k < 5; ++k) {
    const Vector start{dd(rng), dt(rng)};
    ode::IntegrateOptions iopts;
    iopts.step = 0.02;
    iopts.t_end = 25.0;
    const ode::Trace t = integrate_rk4(problem.sim_field, start, iopts);
    for (std::size_t i = 0; i < t.size(); ++i) {
      ASSERT_TRUE(problem.safe_rect.contains(t.state(i)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Controllers, CertificateInvariance,
    ::testing::Values(SweepParam{10, 1}, SweepParam{20, 2},
                      SweepParam{40, 3}, SweepParam{80, 4}));

}  // namespace
}  // namespace bcert::core
