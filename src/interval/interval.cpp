#include "src/interval/interval.h"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace bcert::interval {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kPiHi = kPiUpper;
constexpr double kPiLo = kPiLower;

}  // namespace

Interval widen(const Interval& x, int ulps) {
  if (x.is_empty()) return x;
  double lo = x.lo(), hi = x.hi();
  for (int i = 0; i < ulps; ++i) {
    lo = prev_float(lo);
    hi = next_float(hi);
  }
  return {lo, hi};
}

double Interval::mid() const {
  if (is_empty()) return std::numeric_limits<double>::quiet_NaN();
  if (lo_ == -kInf && hi_ == kInf) return 0.0;
  if (lo_ == -kInf) return hi_ - 1.0;
  if (hi_ == kInf) return lo_ + 1.0;
  // Midpoint computed so it cannot overflow for large finite endpoints.
  return lo_ / 2.0 + hi_ / 2.0;
}

Interval operator+(const Interval& a, double b) { return a + Interval(b); }
Interval operator+(double a, const Interval& b) { return Interval(a) + b; }
Interval operator-(const Interval& a, double b) { return a - Interval(b); }
Interval operator-(double a, const Interval& b) { return Interval(a) - b; }
Interval operator*(const Interval& a, double b) { return a * Interval(b); }
Interval operator*(double a, const Interval& b) { return Interval(a) * b; }
Interval operator/(const Interval& a, double b) { return a / Interval(b); }

Interval sqrt(const Interval& x) {
  const Interval d = intersect(x, {0.0, kInf});
  if (d.is_empty()) return d;
  return {std::max(0.0, prev_float(std::sqrt(d.lo()))),
          next_float(std::sqrt(d.hi()))};
}

Interval exp(const Interval& x) {
  if (x.is_empty()) return x;
  return {std::max(0.0, prev_float(std::exp(x.lo()))),
          next_float(std::exp(x.hi()))};
}

Interval log(const Interval& x) {
  const Interval d = intersect(x, {0.0, kInf});
  if (d.is_empty() || d.hi() == 0.0) return Interval::empty();
  const double lo = d.lo() == 0.0 ? -kInf : prev_float(std::log(d.lo()));
  return {lo, next_float(std::log(d.hi()))};
}

Interval pow(const Interval& x, int n) {
  if (x.is_empty()) return x;
  if (n == 0) return Interval(1.0);
  if (n < 0) return Interval(1.0) / pow(x, -n);
  if (n == 1) return x;
  if (n % 2 == 0) {
    // Even power: symmetric, uses mig/mag like sqr.
    const double lo = x.mig(), hi = x.mag();
    return {prev_float(std::pow(lo, n)), next_float(std::pow(hi, n))};
  }
  // Odd power: monotone.
  return {prev_float(std::pow(x.lo(), n)), next_float(std::pow(x.hi(), n))};
}

namespace {

/// True when some x = offset + k*period (k integer) lies in [lo, hi].
/// offset/period are given as conservative [lo,hi] bounds themselves.
bool contains_critical(double lo, double hi, double offset_lo,
                       double offset_hi, double period_lo, double period_hi) {
  if (hi - lo >= period_hi) return true;
  // Conservative k range: any integer k with
  // offset + k*period ∈ [lo, hi] possibly nonempty.
  const double k_min = std::floor((lo - offset_hi) / period_hi) - 1;
  const double k_max = std::ceil((hi - offset_lo) / period_lo) + 1;
  for (double k = k_min; k <= k_max; ++k) {
    const double x_lo = offset_lo + k * (k >= 0 ? period_lo : period_hi);
    const double x_hi = offset_hi + k * (k >= 0 ? period_hi : period_lo);
    if (x_hi >= lo && x_lo <= hi) return true;
  }
  return false;
}

}  // namespace

Interval sin(const Interval& x) {
  if (x.is_empty()) return x;
  if (x.is_unbounded() || x.width() >= 2.0 * kPiHi) return {-1.0, 1.0};
  // Slightly widen the argument so the critical-point tests are safe.
  const Interval xx = widen(x, 2);
  double lo = std::min(std::sin(x.lo()), std::sin(x.hi()));
  double hi = std::max(std::sin(x.lo()), std::sin(x.hi()));
  lo = prev_float(prev_float(lo));
  hi = next_float(next_float(hi));
  // Maxima of sin at pi/2 + 2k*pi.
  if (contains_critical(xx.lo(), xx.hi(), kPiLo / 2.0, kPiHi / 2.0,
                        2.0 * kPiLo, 2.0 * kPiHi)) {
    hi = 1.0;
  }
  // Minima at -pi/2 + 2k*pi.
  if (contains_critical(xx.lo(), xx.hi(), -kPiHi / 2.0, -kPiLo / 2.0,
                        2.0 * kPiLo, 2.0 * kPiHi)) {
    lo = -1.0;
  }
  return intersect({lo, hi}, {-1.0, 1.0});
}

Interval cos(const Interval& x) {
  if (x.is_empty()) return x;
  if (x.is_unbounded() || x.width() >= 2.0 * kPiHi) return {-1.0, 1.0};
  const Interval xx = widen(x, 2);
  double lo = std::min(std::cos(x.lo()), std::cos(x.hi()));
  double hi = std::max(std::cos(x.lo()), std::cos(x.hi()));
  lo = prev_float(prev_float(lo));
  hi = next_float(next_float(hi));
  // Maxima of cos at 2k*pi.
  if (contains_critical(xx.lo(), xx.hi(), 0.0, 0.0, 2.0 * kPiLo,
                        2.0 * kPiHi)) {
    hi = 1.0;
  }
  // Minima at pi + 2k*pi.
  if (contains_critical(xx.lo(), xx.hi(), kPiLo, kPiHi, 2.0 * kPiLo,
                        2.0 * kPiHi)) {
    lo = -1.0;
  }
  return intersect({lo, hi}, {-1.0, 1.0});
}

Interval tan(const Interval& x) {
  if (x.is_empty()) return x;
  if (x.is_unbounded() || x.width() >= kPiHi) return Interval::entire();
  const Interval xx = widen(x, 2);
  // Poles at pi/2 + k*pi.
  if (contains_critical(xx.lo(), xx.hi(), kPiLo / 2.0, kPiHi / 2.0, kPiLo,
                        kPiHi)) {
    return Interval::entire();
  }
  return {prev_float(prev_float(std::tan(x.lo()))),
          next_float(next_float(std::tan(x.hi())))};
}

Interval atan(const Interval& x) {
  if (x.is_empty()) return x;
  return intersect({prev_float(std::atan(x.lo())),
                    next_float(std::atan(x.hi()))},
                   {-kPiHi / 2.0, kPiHi / 2.0});
}

Interval asin(const Interval& x) {
  const Interval d = intersect(x, {-1.0, 1.0});
  if (d.is_empty()) return d;
  return intersect({prev_float(prev_float(std::asin(d.lo()))),
                    next_float(next_float(std::asin(d.hi())))},
                   {-kPiHi / 2.0, kPiHi / 2.0});
}

Interval acos(const Interval& x) {
  const Interval d = intersect(x, {-1.0, 1.0});
  if (d.is_empty()) return d;
  return intersect({prev_float(prev_float(std::acos(d.hi()))),
                    next_float(next_float(std::acos(d.lo())))},
                   {0.0, kPiHi});
}

Interval sigmoid(const Interval& x) {
  if (x.is_empty()) return x;
  const auto s = [](double v) { return 1.0 / (1.0 + std::exp(-v)); };
  return intersect({prev_float(prev_float(s(x.lo()))),
                    next_float(next_float(s(x.hi())))},
                   {0.0, 1.0});
}

Interval tanh(const Interval& x) {
  if (x.is_empty()) return x;
  return intersect({prev_float(prev_float(std::tanh(x.lo()))),
                    next_float(next_float(std::tanh(x.hi())))},
                   {-1.0, 1.0});
}

Interval atanh(const Interval& x) {
  const Interval d = intersect(x, {-1.0, 1.0});
  if (d.is_empty()) return d;
  const double lo = d.lo() <= -1.0 ? -kInf
                                   : prev_float(prev_float(std::atanh(d.lo())));
  const double hi =
      d.hi() >= 1.0 ? kInf : next_float(next_float(std::atanh(d.hi())));
  return {lo, hi};
}

Interval relu(const Interval& x) {
  if (x.is_empty()) return x;
  return {std::max(0.0, x.lo()), std::max(0.0, x.hi())};
}

namespace {
/// Conservative scalar n-th root (outward padded).
double root_scalar(double v, int n) {
  if (n == 2) return std::sqrt(v);
  if (n == 3) return std::cbrt(v);
  if (v < 0.0) return -std::pow(-v, 1.0 / n);
  return std::pow(v, 1.0 / n);
}
}  // namespace

Interval nth_root(const Interval& x, int n) {
  if (n < 1) return Interval::entire();
  if (n == 1) return x;
  if (n % 2 == 0) {
    const Interval d = intersect(x, {0.0, kInf});
    if (d.is_empty()) return d;
    return {std::max(0.0, prev_float(prev_float(root_scalar(d.lo(), n)))),
            next_float(next_float(root_scalar(d.hi(), n)))};
  }
  if (x.is_empty()) return x;
  return {prev_float(prev_float(root_scalar(x.lo(), n))),
          next_float(next_float(root_scalar(x.hi(), n)))};
}

Interval logit(const Interval& x) {
  const Interval d = intersect(x, {0.0, 1.0});
  if (d.is_empty()) return d;
  const auto f = [](double v) { return std::log(v / (1.0 - v)); };
  const double lo =
      d.lo() <= 0.0 ? -kInf : prev_float(prev_float(f(d.lo())));
  const double hi = d.hi() >= 1.0 ? kInf : next_float(next_float(f(d.hi())));
  return {lo, hi};
}

std::ostream& operator<<(std::ostream& os, const Interval& x) {
  if (x.is_empty()) return os << "[empty]";
  return os << '[' << x.lo() << ", " << x.hi() << ']';
}

}  // namespace bcert::interval
