#pragma once
/// \file engine.h
/// \brief The unified verification engine — the library's top-level API.
///
/// `bcert::Engine` runs barrier-certificate verification at scale. Where
/// the deprecated one-shot verifiers rebuilt every cache per call, the
/// Engine owns the shared infrastructure and amortizes it across *all*
/// the scenarios it is asked to verify:
///
///  * a **thread pool** (`parallel::ThreadPool`) executing submitted
///    jobs and the parallel ICP frontiers / DNF dispatch inside them;
///  * a **tape cache** (`smt::TapeCache`): compiled HC4 bytecode reused
///    whenever scenarios share hash-consed conjunctions;
///  * an **UNSAT-tree cache** (`smt::UnsatTreeCache`): refutation
///    partitions replayed across *structurally* identical queries, so
///    scenario k+1's candidate loop warm-starts from scenario k's
///    proofs;
///  * an **LP warm-basis store**: the final simplex basis per template
///    shape, seeding the next scenario's first candidate LP.
///
/// Submission is asynchronous: `submit()` returns a `JobHandle` with
/// blocking `get()`, cooperative `cancel()` (which interrupts even a
/// long-running ICP query mid-flight), optional deadlines and progress
/// callbacks. `run_campaign()` pipelines a batch of scenarios through
/// the pool and reports per-scenario plus aggregate Table-1 timings.
///
/// Lifetime contract: the caches key on `ExprPool` identity — every
/// `BarrierProblem::pool` passed to this Engine must stay alive until
/// the Engine is destroyed (or until no further jobs are submitted and
/// all handles are retired). Destroying the Engine waits for all
/// submitted jobs to finish (cancel first for a fast exit).

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/falsifier.h"
#include "src/core/pipeline.h"
#include "src/core/runtime_config.h"
#include "src/core/verify_types.h"
#include "src/lp/simplex.h"
#include "src/parallel/thread_pool.h"
#include "src/smt/cache_io.h"
#include "src/smt/tape.h"
#include "src/smt/unsat_tree.h"

namespace bcert::core {

/// Engine construction knobs.
struct EngineOptions {
  /// Workers in the Engine-owned pool; 0 = RuntimeConfig / hardware.
  int threads = 0;
  /// LRU capacities of the shared caches (entries).
  std::size_t tape_cache_entries = smt::TapeCache::kMaxEntries;
  std::size_t unsat_cache_entries = smt::UnsatTreeCache::kMaxEntries;
  /// Seed each scenario's first candidate LP from the last optimal
  /// basis of the same template shape (see PipelineHooks::warm_basis_io
  /// for the contract). Disable to make every job's LP sequence
  /// independent of submission history.
  bool share_lp_basis = true;
};

/// Campaign-level retry policy for transient job failures (injected
/// faults, escaped exceptions — Status::retryable()). Retries run
/// serially on the collecting thread with exponential backoff; a
/// scenario that fails every attempt is quarantined, never fatal.
struct RetryPolicy {
  int max_retries = 2;            ///< extra attempts after the first
  double backoff_s = 0.05;        ///< sleep before the first retry
  double backoff_multiplier = 2.0;
};

/// Per-job options: the pipeline tuning plus Engine-level execution
/// controls.
struct JobOptions {
  VerifierOptions verify;
  TemplateSpec certificate = TemplateSpec::quadratic();
  /// Wall-clock deadline in seconds from submission; 0 = none. An
  /// expired deadline stops the pipeline between steps, clamps every
  /// ICP query's time limit to the remaining budget and interrupts
  /// in-flight simplex pivot loops (status kDeadlineExceeded).
  double deadline_s = 0.0;
  /// Per-job memory quota in bytes for the ICP frontier + UNSAT-tree
  /// recording; 0 = the BCERT_MEM_QUOTA runtime default (which itself
  /// defaults to unlimited). A breached quota winds the job down with
  /// status kResourceExhausted instead of unbounded growth.
  std::size_t mem_quota_bytes = 0;
  /// Campaign watchdog grace: a job that is still running this many
  /// seconds past its deadline is cancelled, and if it still does not
  /// retire within another grace period it is abandoned with
  /// ErrorCode::kWorkerStuck (the worker keeps running detached until
  /// the pool drains at Engine destruction). Only meaningful together
  /// with deadline_s > 0.
  double stuck_grace_s = 1.0;
  /// Retry/quarantine policy applied by run_campaign.
  RetryPolicy retry;
  /// Progress callback; invoked from the executing thread (a pool
  /// worker for submitted jobs) — must be thread-safe and cheap.
  std::function<void(const JobProgress&)> on_progress;
};

/// Shared state of one submitted job (internal).
struct JobState {
  /// Shared with the running task itself (the task captures the token,
  /// NOT this state: state → future → task → state would be a
  /// shared_ptr cycle and leak every job). A dropped handle therefore
  /// still cannot leave the running job with a dangling token.
  std::shared_ptr<parallel::CancellationToken> cancel =
      std::make_shared<parallel::CancellationToken>();
  std::shared_future<VerifyResult> future;
};

/// Handle to a submitted job. Copyable (shared); `get()` blocks.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the job finished and returns its result. Safe to call
  /// repeatedly (shared future). Throws std::logic_error on an invalid
  /// (default-constructed or moved-from) handle, as do the accessors
  /// below.
  VerifyResult get() const { return state().future.get(); }

  /// True when the result is ready (non-blocking).
  bool done() const {
    return state().future.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }

  /// Blocks up to \p seconds; true when the result became ready.
  bool wait_for(double seconds) const {
    return state().future.wait_for(std::chrono::duration<double>(seconds)) ==
           std::future_status::ready;
  }

  /// Requests cooperative cancellation: the pipeline stops at the next
  /// step boundary and any in-flight ICP query stops admitting boxes.
  /// The job still completes (promptly) with status kCancelled — call
  /// get() to observe it.
  void cancel() const { state().cancel->cancel(); }

 private:
  JobState& state() const {
    if (state_ == nullptr) {
      throw std::logic_error("JobHandle: invalid (empty) handle");
    }
    return *state_;
  }

  friend class Engine;
  explicit JobHandle(std::shared_ptr<JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<JobState> state_;
};

/// One named campaign scenario. `certificate`, when set, overrides the
/// campaign-default template for this scenario only — how a generated
/// mixed suite verifies some scenarios with a quadratic and others with
/// a polynomial template in one run_campaign call.
struct Scenario {
  std::string name;
  BarrierProblem problem;
  std::optional<TemplateSpec> certificate;
};

/// Per-scenario campaign outcome. `result.error` carries the typed
/// failure (if any) of the *final* attempt; `attempts` counts every
/// attempt including the first.
struct ScenarioOutcome {
  std::string name;
  VerifyResult result;
  int attempts = 1;
  bool quarantined = false;  ///< failed every attempt (see CampaignResult)
};

/// Campaign summary: per-scenario results plus the aggregate Table-1
/// timing columns. A campaign always completes with partial results:
/// scenarios whose jobs fault, throw or hang are retried per
/// RetryPolicy, then quarantined — never allowed to take the process
/// (or the other scenarios' results) down.
struct CampaignResult {
  std::vector<ScenarioOutcome> scenarios;
  VerifyTimings aggregate;   ///< column-wise sum over scenarios
  double wall_time_s = 0.0;  ///< end-to-end campaign wall clock
  int safe_count = 0;
  /// Scenarios whose final attempt still failed with a transient-class
  /// error (kFaultInjected / kInternal / kWorkerStuck) — candidates to
  /// exclude from a re-run.
  std::vector<std::string> quarantined;
  /// Scenarios whose final result carries any non-kOk error.
  int failed_count = 0;

  double scenarios_per_sec() const {
    return wall_time_s > 0.0
               ? static_cast<double>(scenarios.size()) / wall_time_s
               : 0.0;
  }
  /// Machine-readable summary (per-scenario verdicts via
  /// report.h's result JSON plus the aggregate block).
  std::string to_json() const;
};

/// The unified verification engine. Thread-safe: submit/verify may be
/// called concurrently from multiple threads.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  /// Waits for every submitted job to finish (the owned pool drains its
  /// queue before joining). Cancel outstanding handles first for a fast
  /// exit.
  ~Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Blocking single-scenario verification on the calling thread, using
  /// the shared caches. On a fresh Engine this is bit-identical to the
  /// deprecated `BarrierVerifier::verify()` / `PolyBarrierVerifier::
  /// verify()` one-shots (asserted by tests/engine_test.cpp).
  VerifyResult verify(const BarrierProblem& problem,
                      const JobOptions& options = {});

  /// Asynchronous submission: the job runs on the Engine's pool.
  JobHandle submit(BarrierProblem problem, JobOptions options = {});

  /// Verifies every scenario, pipelined through the pool, and returns
  /// per-scenario plus aggregate results. \p defaults applies to every
  /// scenario.
  CampaignResult run_campaign(std::span<const Scenario> scenarios,
                              const JobOptions& defaults = {});
  /// Convenience overload for unnamed problems (named scenario-0..N-1).
  CampaignResult run_campaign(std::span<const BarrierProblem> problems,
                              const JobOptions& defaults = {});

  /// Testing-side complement: optimization-based falsification of a
  /// scenario, with simulation batches and CMA-ES evaluations running
  /// on the Engine's pool. Blocking; see core::Falsifier.
  FalsificationResult falsify(const BarrierProblem& problem,
                              FalsifierOptions options = {});

  parallel::ThreadPool& pool() { return pool_; }
  const smt::TapeCache& tape_cache() const { return *tape_cache_; }
  const smt::UnsatTreeCache& unsat_cache() const { return *unsat_cache_; }

  std::size_t jobs_submitted() const { return jobs_submitted_.load(); }

  /// Exports the Engine's warm state — cached tapes and UNSAT trees
  /// under their pool-independent signatures plus the LP warm-basis
  /// store — for persistence (smt::save_snapshot). Consistent point-in-
  /// time copy; safe to call while jobs run.
  smt::WarmState export_warm_state() const;

  /// Imports a previously exported warm state. Tapes and trees land in
  /// the caches' warm side tables (adopted on the first matching miss,
  /// observable via warm_restores()); bases merge into the warm-basis
  /// store, keeping any live entry (this run's bases are newer). Loaded
  /// state only changes timings, never verdicts: warm tapes are
  /// bit-identical programs, trees only seed partitions, bases only pick
  /// simplex starting points.
  void import_warm_state(smt::WarmState state);

 private:
  /// Executes one job on the current thread with the shared
  /// infrastructure wired into the pipeline hooks.
  VerifyResult run_job(const BarrierProblem& problem,
                       const JobOptions& options,
                       parallel::CancellationToken* cancel,
                       std::chrono::steady_clock::time_point submitted);

  /// Key of the LP warm-basis store: template kind + degree + problem
  /// dimension (bases only transfer between identically-shaped LPs).
  using BasisKey = std::tuple<int, int, std::size_t>;

  EngineOptions options_;
  std::shared_ptr<smt::TapeCache> tape_cache_;
  std::shared_ptr<smt::UnsatTreeCache> unsat_cache_;
  mutable std::mutex basis_mutex_;
  std::map<BasisKey, lp::LpBasis> warm_bases_;
  std::atomic<std::size_t> jobs_submitted_{0};
  /// Declared LAST on purpose: the pool's destructor drains queued jobs
  /// and joins its workers, and those jobs touch every member above —
  /// so the pool must be destroyed (and the jobs finished) first.
  parallel::ThreadPool pool_;
};

}  // namespace bcert::core

namespace bcert {
// The Engine is the library's top-level entry point; surface it (and
// the types its signatures need) at namespace scope.
using core::Engine;
using core::EngineOptions;
using core::JobHandle;
using core::JobOptions;
using core::Scenario;
using core::TemplateSpec;
}  // namespace bcert
