#pragma once
/// \file client.h
/// \brief `bcertctl`'s client side of the bcertd line protocol.
///
/// A thin, synchronous client: connect to the daemon's Unix-domain
/// socket, send one JSON request line, read lines until the matching
/// response arrives (asynchronous events received in between are
/// buffered for `read_event`). Connection failures are surfaced, never
/// retried here — the retry/reconnect policy belongs to the caller
/// (`bcertctl` reconnects and recovers job results through `status`,
/// which is what makes its campaigns survive `socket_io` fault drops).

#include <cstdint>
#include <deque>
#include <string>

#include "src/daemon/json.h"

namespace bcert::daemon {

/// Synchronous protocol client. Not thread-safe (one conversation).
class Client {
 public:
  explicit Client(std::string socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (or reconnects, dropping any buffered events). Retries
  /// inside for up to \p timeout_s — covers the race against a daemon
  /// that is still binding its socket.
  bool connect(double timeout_s, std::string* error);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Sends \p request (a JSON object WITHOUT an "id"; one is added) and
  /// blocks until the response carrying the matching "req" arrives.
  /// Events seen while waiting queue up for read_event(). False on
  /// protocol/socket failure (the connection is closed; reconnect to
  /// continue).
  bool request(const std::string& request, JsonValue& response,
               std::string* error);

  /// Next buffered-or-read asynchronous event within \p timeout_s.
  bool read_event(JsonValue& out, double timeout_s, std::string* error);

 private:
  bool send_all(const std::string& line, std::string* error);
  /// One line (without the newline) within \p timeout_s.
  bool read_line(std::string& out, double timeout_s, std::string* error);

  std::string path_;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::string buffer_;
  std::deque<JsonValue> events_;
};

}  // namespace bcert::daemon
