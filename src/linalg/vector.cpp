#include "src/linalg/vector.h"

#include <algorithm>
#include <cmath>
#include <new>
#include <ostream>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace bcert::linalg {

namespace {
void check_same_size(const Vector& a, const Vector& b, const char* op) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string("Vector ") + op +
                                ": dimension mismatch");
  }
}
}  // namespace

Vector& Vector::operator+=(const Vector& rhs) {
  check_same_size(*this, rhs, "+=");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  check_same_size(*this, rhs, "-=");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Vector& Vector::operator/=(double s) {
  for (double& v : data_) v /= s;
  return *this;
}

double Vector::norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Vector::norm_inf() const {
  double acc = 0.0;
  for (double v : data_) acc = std::max(acc, std::fabs(v));
  return acc;
}

double Vector::sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

void Vector::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(Vector lhs, double s) { return lhs *= s; }
Vector operator*(double s, Vector rhs) { return rhs *= s; }
Vector operator/(Vector lhs, double s) { return lhs /= s; }

Vector operator-(Vector v) {
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = -v[i];
  return v;
}

void axpy(double a, const Vector& x, Vector& y) {
  check_same_size(x, y, "axpy");
  axpy(x.size(), a, x.data(), y.data());
}

void axpy(std::size_t n, double a, const double* x, double* y) {
  std::size_t i = 0;
#if defined(__SSE2__)
  const __m128d va = _mm_set1_pd(a);
  for (; i + 2 <= n; i += 2) {
    const __m128d vy = _mm_loadu_pd(y + i);
    const __m128d vx = _mm_loadu_pd(x + i);
    _mm_storeu_pd(y + i, _mm_add_pd(vy, _mm_mul_pd(va, vx)));
  }
#endif
  for (; i < n; ++i) y[i] += a * x[i];
}

void scale_divide(std::size_t n, double d, double* x) {
  std::size_t i = 0;
#if defined(__SSE2__)
  const __m128d vd = _mm_set1_pd(d);
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(x + i, _mm_div_pd(_mm_loadu_pd(x + i), vd));
  }
#endif
  for (; i < n; ++i) x[i] /= d;
}

double dot(std::size_t n, const double* x, const double* y) {
  // Sequential accumulation on purpose — see the header contract.
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void AlignedDeleter::operator()(double* p) const noexcept {
  ::operator delete[](p, std::align_val_t{64});
}

AlignedDoubles aligned_doubles(std::size_t n) {
  auto* p = static_cast<double*>(
      ::operator new[](n * sizeof(double), std::align_val_t{64}));
  std::fill(p, p + n, 0.0);
  return AlignedDoubles(p);
}

void scale_add(Vector& out, const Vector& x, double a, const Vector& y) {
  check_same_size(x, y, "scale_add");
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + a * y[i];
}

void copy_into(const Vector& x, Vector& out) {
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i];
}

double dot(const Vector& a, const Vector& b) {
  check_same_size(a, b, "dot");
  return dot(a.size(), a.data(), b.data());
}

Vector hadamard(const Vector& a, const Vector& b) {
  check_same_size(a, b, "hadamard");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

std::ostream& operator<<(std::ostream& os, const Vector& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  return os << ']';
}

}  // namespace bcert::linalg
