// Stress, differential and warm-start coverage for the flat vectorized
// simplex core (src/lp/simplex.cpp):
//   * LpStress      — degenerate / unbounded / infeasible / empty-bound /
//                     redundant-row programs, plus pricing-rule torture.
//   * LpDifferential— randomized programs solved by both the new core
//                     and the preserved seed implementation
//                     (lp_reference_simplex.h); status must match and
//                     optimal objectives agree to 1e-9.
//   * LpWarm        — warm-started solves must equal cold solves across
//                     append-only LP sequences, including a recorded
//                     verifier candidate-loop sequence and the full
//                     BarrierVerifier pipeline warm vs cold.
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "src/core/lp_synthesis.h"
#include "src/core/verifier.h"
#include "src/dubins/training.h"
#include "src/lp/problem.h"
#include "src/lp/simplex.h"
#include "tests/lp_reference_simplex.h"

namespace bcert::lp {
namespace {

using linalg::Vector;

// --- helpers ----------------------------------------------------------------

// The verifier-shaped margin LP generator is shared with the LP
// warm-start benchmark (bench/bench_common.h), so the gated benchmark
// and this equivalence coverage can never drift apart.
using bench::append_margin_rows;
using bench::margin_lp;

void expect_same_solution(const LpSolution& a, const LpSolution& b,
                          const char* what) {
  ASSERT_EQ(a.status, b.status)
      << what << ": " << lp_status_name(a.status) << " vs "
      << lp_status_name(b.status);
  if (a.status != LpStatus::kOptimal) return;
  EXPECT_NEAR(a.objective, b.objective,
              1e-9 * (1.0 + std::fabs(a.objective)))
      << what;
  ASSERT_EQ(a.x.size(), b.x.size()) << what;
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_NEAR(a.x[i], b.x[i], 1e-6) << what << " x[" << i << "]";
  }
}

// --- LpStress ---------------------------------------------------------------

TEST(LpStress, BealeDegenerateUnderEveryPricingRule) {
  LpProblem p = LpProblem::with_free_vars(4);
  p.sense = Sense::kMinimize;
  p.objective = Vector{-0.75, 150.0, -0.02, 6.0};
  p.lower = {0.0, 0.0, 0.0, 0.0};
  p.add_row(Vector{0.25, -60.0, -0.04, 9.0}, RowRel::kLe, 0.0);
  p.add_row(Vector{0.5, -90.0, -0.02, 3.0}, RowRel::kLe, 0.0);
  p.add_row(Vector{0.0, 0.0, 1.0, 0.0}, RowRel::kLe, 1.0);

  for (const int window : {0, 1, 2, 64}) {
    SimplexOptions opts;
    opts.pricing_window = window;
    LpSolution s = solve_lp(p, opts);
    ASSERT_EQ(s.status, LpStatus::kOptimal) << "window " << window;
    EXPECT_NEAR(s.objective, -0.05, 1e-6) << "window " << window;
  }
  // Pure Bland from the first pivot must also terminate (anti-cycling).
  SimplexOptions bland;
  bland.bland_after = 0;
  LpSolution s = solve_lp(p, bland);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-6);
}

TEST(LpStress, HomogeneousDegenerateMarginLp) {
  // Fully homogeneous margin LP (no rhs perturbation): maximally
  // degenerate starting vertex; must still terminate optimal.
  std::mt19937 rng(11);
  LpProblem p = margin_lp(rng, 3, 120);
  for (LpRow& row : p.rows) row.rhs = 0.0;
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_GT(s.x[3], 0.0);
}

TEST(LpStress, EmptyBoundThrows) {
  LpProblem p = LpProblem::with_free_vars(2);
  p.lower = {0.0, 1.0};
  p.upper = {1.0, 0.5};  // empty interval for x1
  EXPECT_THROW(solve_lp(p), std::invalid_argument);
}

TEST(LpStress, RedundantRowsKeepZeroLevelArtificials) {
  // Three copies of the same equality: two rows are redundant and keep
  // their artificials basic at level zero; the solve must still finish
  // and its exported basis must round-trip through a warm start.
  LpProblem p = LpProblem::with_free_vars(2);
  p.objective = Vector{1.0, 1.0};
  p.lower = {0.0, 0.0};
  for (int i = 0; i < 3; ++i) {
    p.add_row(Vector{1.0, 2.0}, RowRel::kEq, 3.0);
  }
  const LpSolution cold = solve_lp(p);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  EXPECT_NEAR(cold.objective, 1.5, 1e-8);
  ASSERT_EQ(cold.basis.num_rows(), 3u);

  SimplexOptions warm_opts;
  warm_opts.warm_start = cold.basis;
  const LpSolution warm = solve_lp(p, warm_opts);
  expect_same_solution(cold, warm, "redundant-row warm round-trip");
}

TEST(LpStress, InconsistentRedundantRowsInfeasible) {
  LpProblem p = LpProblem::with_free_vars(2);
  p.objective = Vector{1.0, 1.0};
  p.lower = {0.0, 0.0};
  p.add_row(Vector{1.0, 2.0}, RowRel::kEq, 3.0);
  p.add_row(Vector{1.0, 2.0}, RowRel::kEq, 4.0);  // contradicts row 0
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

// --- LpDifferential ---------------------------------------------------------

/// Random LP generator covering every variable-bound kind and row
/// relation the converter handles.
LpProblem random_lp(std::mt19937& rng) {
  std::uniform_int_distribution<int> nvars(1, 5);
  std::uniform_int_distribution<int> nrows(0, 12);
  std::uniform_int_distribution<int> kind(0, 3);
  std::uniform_int_distribution<int> rel(0, 5);
  std::uniform_real_distribution<double> coeff(-2.0, 2.0);
  std::uniform_real_distribution<double> rhs(-3.0, 3.0);

  const std::size_t n = static_cast<std::size_t>(nvars(rng));
  LpProblem p = LpProblem::with_free_vars(n);
  p.sense = rel(rng) % 2 == 0 ? Sense::kMinimize : Sense::kMaximize;
  for (std::size_t j = 0; j < n; ++j) {
    p.objective[j] = coeff(rng);
    switch (kind(rng)) {
      case 0:  // free
        break;
      case 1:
        p.lower[j] = rhs(rng);
        break;
      case 2:
        p.upper[j] = rhs(rng);
        break;
      default: {
        const double a = rhs(rng), b = rhs(rng);
        p.lower[j] = std::min(a, b);
        p.upper[j] = std::max(a, b);
        break;
      }
    }
  }
  const int m = nrows(rng);
  for (int i = 0; i < m; ++i) {
    Vector row(n);
    for (std::size_t j = 0; j < n; ++j) row[j] = coeff(rng);
    // Mostly inequalities; equalities sparingly (they drive phase 1).
    const int r = rel(rng);
    const RowRel rr = r <= 2 ? RowRel::kLe : (r <= 4 ? RowRel::kGe
                                                     : RowRel::kEq);
    p.add_row(std::move(row), rr, rhs(rng));
  }
  return p;
}

class LpDifferential : public ::testing::TestWithParam<int> {};

TEST_P(LpDifferential, FlatCoreMatchesSeedImplementation) {
  std::mt19937 rng(GetParam() * 7919 + 101);
  for (int trial = 0; trial < 40; ++trial) {
    const LpProblem p = random_lp(rng);
    const LpSolution seed = seed_ref::solve_lp(p);
    const LpSolution flat = solve_lp(p);
    ASSERT_EQ(flat.status, seed.status)
        << "seed " << GetParam() << " trial " << trial << ": flat "
        << lp_status_name(flat.status) << " vs seed "
        << lp_status_name(seed.status);
    if (seed.status == LpStatus::kOptimal) {
      EXPECT_NEAR(flat.objective, seed.objective,
                  1e-9 * (1.0 + std::fabs(seed.objective)))
          << "seed " << GetParam() << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpDifferential, ::testing::Range(0, 8));

// --- LpWarm -----------------------------------------------------------------

TEST(LpWarm, WarmEqualsColdAcrossAppendOnlySequence) {
  for (unsigned seed = 0; seed < 6; ++seed) {
    std::mt19937 rng(977 * seed + 13);
    LpProblem p = margin_lp(rng, 5, 60);

    LpSolution cold = solve_lp(p);
    ASSERT_EQ(cold.status, LpStatus::kOptimal);
    LpBasis basis = cold.basis;

    for (int iter = 0; iter < 8; ++iter) {
      append_margin_rows(p, rng, 4);
      SimplexOptions warm_opts;
      warm_opts.warm_start = basis;
      const LpSolution warm = solve_lp(p, warm_opts);
      const LpSolution fresh = solve_lp(p);
      expect_same_solution(fresh, warm, "append sequence");
      EXPECT_TRUE(warm.used_warm_start)
          << "seed " << seed << " iter " << iter;
      EXPECT_LE(warm.iterations, fresh.iterations)
          << "seed " << seed << " iter " << iter
          << ": warm start did more pivots than cold";
      basis = warm.basis;
    }
  }
}

TEST(LpWarm, InfeasibleAfterWarmStart) {
  std::mt19937 rng(5);
  LpProblem p = margin_lp(rng, 3, 30);
  const LpSolution base = solve_lp(p);
  ASSERT_EQ(base.status, LpStatus::kOptimal);

  // Appended rows force the margin above 1 while a coefficient-free row
  // caps it below: infeasible after the warm start.
  Vector force_up(4);
  force_up[3] = -1.0;
  p.add_row(std::move(force_up), RowRel::kLe, -1.0);  // g >= 1
  Vector cap(4);
  cap[3] = 1.0;
  p.add_row(std::move(cap), RowRel::kLe, 0.5);  // g <= 0.5

  SimplexOptions warm_opts;
  warm_opts.warm_start = base.basis;
  const LpSolution warm = solve_lp(p, warm_opts);
  const LpSolution cold = solve_lp(p);
  EXPECT_EQ(cold.status, LpStatus::kInfeasible);
  EXPECT_EQ(warm.status, LpStatus::kInfeasible);
}

TEST(LpWarm, UnboundedReachedFromWarmBasis) {
  // Same feasible set, new objective: the warm basis realizes cleanly
  // and primal iterations must still detect unboundedness.
  LpProblem p = LpProblem::with_free_vars(2);
  p.sense = Sense::kMaximize;
  p.objective = Vector{1.0, 0.0};
  p.lower = {0.0, 0.0};
  p.add_row(Vector{1.0, 0.0}, RowRel::kLe, 3.0);
  const LpSolution base = solve_lp(p);
  ASSERT_EQ(base.status, LpStatus::kOptimal);

  p.objective = Vector{0.0, 1.0};  // y is unbounded above
  SimplexOptions warm_opts;
  warm_opts.warm_start = base.basis;
  EXPECT_EQ(solve_lp(p, warm_opts).status, LpStatus::kUnbounded);
  EXPECT_EQ(solve_lp(p).status, LpStatus::kUnbounded);
}

TEST(LpWarm, MalformedBasisFallsBackToCold) {
  std::mt19937 rng(21);
  const LpProblem p = margin_lp(rng, 4, 40);
  const LpSolution cold = solve_lp(p);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);

  const auto solve_with = [&](LpBasis basis) {
    SimplexOptions opts;
    opts.warm_start = std::move(basis);
    return solve_lp(p, opts);
  };

  LpBasis wrong_struct = cold.basis;
  wrong_struct.num_structural += 3;
  LpBasis out_of_range = cold.basis;
  out_of_range.basic[0] = 1 << 20;
  LpBasis duplicate = cold.basis;
  duplicate.basic[1] = duplicate.basic[0];
  LpBasis oversized = cold.basis;
  oversized.basic.resize(oversized.basic.size() + 50,
                         oversized.num_structural);

  for (LpBasis* basis :
       {&wrong_struct, &out_of_range, &duplicate, &oversized}) {
    const LpSolution s = solve_with(*basis);
    EXPECT_FALSE(s.used_warm_start);
    expect_same_solution(cold, s, "malformed-basis fallback");
  }
}

TEST(LpWarm, TinyIterationBudgetStaysSound) {
  // The warm attempt is capped at half the shared iteration budget and
  // abandoned on a stall; whatever the budget, the solver must never
  // report a wrong optimum — only kOptimal (matching the full-budget
  // answer) or kIterLimit.
  std::mt19937 rng(3);
  LpProblem p = margin_lp(rng, 4, 50);
  const LpSolution base = solve_lp(p);
  ASSERT_EQ(base.status, LpStatus::kOptimal);
  append_margin_rows(p, rng, 6);
  const LpSolution full = solve_lp(p);
  ASSERT_EQ(full.status, LpStatus::kOptimal);

  for (const int budget : {0, 1, 2, 5, 20, 1000}) {
    SimplexOptions opts;
    opts.max_iterations = budget;
    opts.warm_start = base.basis;
    const LpSolution s = solve_lp(p, opts);
    EXPECT_LE(s.iterations, budget) << "budget " << budget;
    if (s.status == LpStatus::kOptimal) {
      EXPECT_NEAR(s.objective, full.objective,
                  1e-9 * (1.0 + std::fabs(full.objective)))
          << "budget " << budget;
    } else {
      EXPECT_EQ(s.status, LpStatus::kIterLimit) << "budget " << budget;
    }
  }
}

TEST(LpWarm, RecordedVerifierLpSequence) {
  // Record the actual LP sequence of the verifier's candidate loop: the
  // seed sample set of the paper's case study, extended step by step
  // with further trajectory samples (what counterexample refinement
  // does), re-synthesizing after each extension. Warm-started synthesis
  // must match cold synthesis at every step.
  expr::ExprPool pool;
  const nn::FeedforwardNet net =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 42);
  core::BarrierProblem problem = bench::make_problem(pool, net);
  core::BarrierVerifier verifier(std::move(problem), {});

  std::vector<core::FieldSample> samples;
  const auto states = verifier.random_initial_states(10, 1);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto s = verifier.simulate_samples(states[i]);
    samples.insert(samples.end(), s.begin(), s.end());
  }

  core::SynthesisOptions cold_opts;  // warm flag irrelevant: basis unset
  core::SynthesisOptions warm_opts;
  lp::LpBasis basis;
  for (std::size_t step = 4; step < states.size(); ++step) {
    warm_opts.simplex.warm_start = basis;
    const core::SynthesisResult warm =
        core::synthesize_candidate(samples, 2, warm_opts);
    const core::SynthesisResult cold =
        core::synthesize_candidate(samples, 2, cold_opts);
    ASSERT_EQ(warm.lp_status, cold.lp_status) << "step " << step;
    ASSERT_EQ(warm.feasible, cold.feasible) << "step " << step;
    EXPECT_NEAR(warm.margin, cold.margin, 1e-9 * (1.0 + cold.margin))
        << "step " << step;
    if (!basis.empty()) {
      EXPECT_TRUE(warm.lp_warm_started) << "step " << step;
    }
    basis = warm.basis;

    const auto s = verifier.simulate_samples(states[step]);
    samples.insert(samples.end(), s.begin(), s.end());
  }
}

TEST(LpWarm, FullVerifierWarmMatchesCold) {
  expr::ExprPool pool;
  const nn::FeedforwardNet net =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 42);

  core::VerifierOptions warm_opts;
  warm_opts.synthesis.warm_start = true;
  core::VerifierOptions cold_opts;
  cold_opts.synthesis.warm_start = false;

  core::BarrierVerifier warm_verifier(bench::make_problem(pool, net),
                                      warm_opts);
  core::VerifyResult warm = warm_verifier.verify();
  core::BarrierVerifier cold_verifier(bench::make_problem(pool, net),
                                      cold_opts);
  core::VerifyResult cold = cold_verifier.verify();

  EXPECT_EQ(warm.status, cold.status)
      << core::verify_status_name(warm.status) << " vs "
      << core::verify_status_name(cold.status);
  EXPECT_NEAR(warm.lp_margin, cold.lp_margin,
              1e-9 * (1.0 + cold.lp_margin));
  if (warm.safe() && cold.safe()) {
    EXPECT_NEAR(warm.level, cold.level, 1e-6 * (1.0 + cold.level));
    ASSERT_TRUE(warm.generator && cold.generator);
    const linalg::Vector& wc = warm.generator->coeffs();
    const linalg::Vector& cc = cold.generator->coeffs();
    ASSERT_EQ(wc.size(), cc.size());
    for (std::size_t i = 0; i < wc.size(); ++i) {
      EXPECT_NEAR(wc[i], cc[i], 1e-7) << "W coefficient " << i;
    }
  }
}

}  // namespace
}  // namespace bcert::lp
