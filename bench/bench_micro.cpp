// Micro-benchmarks (google-benchmark) for the substrate layers: interval
// arithmetic, expression evaluation (scalar & interval), HC4 contraction,
// NN forward passes, the LP solver, RK4 integration, and the
// eigendecomposition used by CMA-ES — plus headline head-to-head
// measurements (sequential vs parallel ICP, allocating vs zero-alloc
// RK4) that are written to BENCH_micro.json.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <random>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/expr/derivative.h"
#include "src/scenario/generator.h"
#include "src/smt/cache_io.h"
#include "src/expr/eval.h"
#include "src/linalg/decompositions.h"
#include "src/smt/hc4.h"
#include "src/smt/icp_solver.h"

namespace {

using namespace bcert;
using interval::Box;
using interval::Interval;
using linalg::Vector;

void BM_IntervalArithmetic(benchmark::State& state) {
  Interval a(0.3, 1.7), b(-2.0, 0.4);
  for (auto _ : state) {
    Interval c = a * b + a - b / Interval(2.0, 3.0);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_IntervalArithmetic);

void BM_IntervalTranscendental(benchmark::State& state) {
  Interval a(-0.8, 0.9);
  for (auto _ : state) {
    Interval c = interval::tanh(interval::sin(a) + interval::cos(a));
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_IntervalTranscendental);

nn::FeedforwardNet make_net(std::size_t hidden) {
  std::mt19937 rng(5);
  nn::FeedforwardNet net = nn::FeedforwardNet::single_hidden(2, hidden, 1);
  net.randomize(rng);
  return net;
}

void BM_NnForward(benchmark::State& state) {
  const nn::FeedforwardNet net =
      make_net(static_cast<std::size_t>(state.range(0)));
  const Vector x{0.7, -0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x));
  }
}
BENCHMARK(BM_NnForward)->Arg(10)->Arg(100)->Arg(1000);

void BM_NnSymbolicEvalScalar(benchmark::State& state) {
  const nn::FeedforwardNet net =
      make_net(static_cast<std::size_t>(state.range(0)));
  expr::ExprPool pool;
  expr::Evaluator ev(pool, net.to_expr(pool, {pool.var(0), pool.var(1)}));
  const Vector x{0.7, -0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.eval(x));
  }
}
BENCHMARK(BM_NnSymbolicEvalScalar)->Arg(10)->Arg(100)->Arg(1000);

void BM_NnSymbolicEvalInterval(benchmark::State& state) {
  const nn::FeedforwardNet net =
      make_net(static_cast<std::size_t>(state.range(0)));
  expr::ExprPool pool;
  expr::Evaluator ev(pool, net.to_expr(pool, {pool.var(0), pool.var(1)}));
  const Box box = Box::from_bounds({{0.6, 0.8}, {-0.4, -0.2}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.eval(box));
  }
}
BENCHMARK(BM_NnSymbolicEvalInterval)->Arg(10)->Arg(100)->Arg(1000);

smt::Conjunction lie_conjunction(expr::ExprPool& pool, std::size_t hidden) {
  const nn::FeedforwardNet net = make_net(hidden);
  const dubins::ErrorModel model{1.0, 0.0};
  const auto field = dubins::closed_loop_field_expr(model, net, pool);
  core::QuadraticForm w(2, Vector{0.4, 0.7, 1.0});
  const expr::ExprId lie =
      expr::lie_derivative(pool, w.to_expr(pool), field);
  smt::Conjunction c;
  c.add(pool.add(lie, pool.constant(1e-6)), smt::Rel::kGe);
  return c;
}

void BM_Hc4ContractLieDerivative(benchmark::State& state) {
  expr::ExprPool pool;
  const smt::Conjunction c =
      lie_conjunction(pool, static_cast<std::size_t>(state.range(0)));
  smt::Hc4Contractor contractor(pool, c, smt::Hc4Mode::kTree);
  for (auto _ : state) {
    Box box = Box::from_bounds({{1.0, 2.0}, {0.2, 0.6}});
    benchmark::DoNotOptimize(contractor.contract(box));
  }
}
BENCHMARK(BM_Hc4ContractLieDerivative)->Arg(10)->Arg(100)->Arg(1000);

void BM_Hc4ContractTapeLieDerivative(benchmark::State& state) {
  expr::ExprPool pool;
  const smt::Conjunction c =
      lie_conjunction(pool, static_cast<std::size_t>(state.range(0)));
  smt::Hc4Contractor contractor(pool, c, smt::Hc4Mode::kTape);
  for (auto _ : state) {
    Box box = Box::from_bounds({{1.0, 2.0}, {0.2, 0.6}});
    benchmark::DoNotOptimize(contractor.contract(box));
  }
}
BENCHMARK(BM_Hc4ContractTapeLieDerivative)->Arg(10)->Arg(100)->Arg(1000);

void BM_SimplexMarginLp(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> d(0.1, 2.0);
  lp::LpProblem p = lp::LpProblem::with_free_vars(4);
  p.sense = lp::Sense::kMaximize;
  p.objective[3] = 1.0;
  for (int i = 0; i < 3; ++i) {
    p.lower[i] = -1.0;
    p.upper[i] = 1.0;
  }
  p.lower[3] = 0.0;
  for (int i = 0; i < rows; ++i) {
    p.add_row(Vector{-d(rng), -d(rng), -d(rng), 1.0}, lp::RowRel::kLe, 0.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lp(p));
  }
}
BENCHMARK(BM_SimplexMarginLp)->Arg(100)->Arg(400)->Arg(1000);

void BM_LpSolveCold(benchmark::State& state) {
  std::mt19937 rng(7);
  const lp::LpProblem p =
      bench::margin_lp(rng, 6, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lp(p));
  }
}
BENCHMARK(BM_LpSolveCold)->Arg(100)->Arg(400);

void BM_LpSolveWarm(benchmark::State& state) {
  // The refinement-loop pattern: the previous iteration's LP has been
  // solved (its basis is in hand) and 4 counterexample rows arrive.
  std::mt19937 rng(7);
  lp::LpProblem p =
      bench::margin_lp(rng, 6, static_cast<int>(state.range(0)) - 4);
  const lp::LpSolution base = solve_lp(p);
  bench::append_margin_rows(p, rng, 4);
  lp::SimplexOptions opts;
  opts.warm_start = base.basis;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lp(p, opts));
  }
}
BENCHMARK(BM_LpSolveWarm)->Arg(100)->Arg(400);

void BM_Rk4DubinsTrace(benchmark::State& state) {
  const nn::FeedforwardNet net = make_net(10);
  const auto field =
      dubins::closed_loop_field(dubins::ErrorModel{1.0, 0.0}, net);
  ode::IntegrateOptions opts;
  opts.step = 0.01;
  opts.t_end = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(integrate_rk4(field, Vector{3.0, 0.5}, opts));
  }
}
BENCHMARK(BM_Rk4DubinsTrace);

void BM_SymmetricEigen(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  linalg::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) a(r, c) = a(c, r) = d(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::symmetric_eigen(a));
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(8)->Arg(32)->Arg(64);

void BM_FullVerificationSmall(benchmark::State& state) {
  for (auto _ : state) {
    expr::ExprPool pool;
    const nn::FeedforwardNet net =
        dubins::distill_controller(dubins::proportional_teacher(), 10, 42);
    core::Engine engine;
    benchmark::DoNotOptimize(
        engine.verify(bench::make_problem(pool, net)));
  }
}
BENCHMARK(BM_FullVerificationSmall)->Unit(benchmark::kMillisecond);

// --- headline head-to-head measurements (BENCH_micro.json) ------------------
// These seed the machine-readable perf trajectory: ICP branch-and-prune
// sequential vs parallel, and the RK4 rollout pipeline before/after
// allocation elimination. BCERT_ICP_BOXES / BCERT_ROLLOUTS scale the work.

using bench_clock = std::chrono::steady_clock;

double wall_of(const std::function<void()>& fn) {
  const auto t0 = bench_clock::now();
  fn();
  return std::chrono::duration<double>(bench_clock::now() - t0).count();
}

/// Interval-opaque identity over the closed-loop Lie derivative:
/// h = (E + E) − E − E is identically zero, but its natural enclosure
/// always straddles zero on non-degenerate boxes, so `h > 0` never
/// resolves and branch-and-prune runs to its box budget — a uniform,
/// NN-heavy workload representative of the paper's SMT-(5) queries.
smt::Conjunction icp_workload(expr::ExprPool& pool) {
  const nn::FeedforwardNet net = make_net(10);
  const dubins::ErrorModel model{1.0, 0.0};
  const auto field = dubins::closed_loop_field_expr(model, net, pool);
  core::QuadraticForm w(2, Vector{0.4, 0.7, 1.0});
  const expr::ExprId lie =
      expr::lie_derivative(pool, w.to_expr(pool), field);
  const expr::ExprId h =
      pool.sub(pool.sub(pool.add(lie, lie), lie), lie);
  smt::Conjunction c;
  c.add(h, smt::Rel::kGt);
  return c;
}

void headline_icp(bench::JsonReport& report) {
  expr::ExprPool pool;
  const smt::Conjunction c = icp_workload(pool);
  const Box box = Box::from_bounds({{-4.0, 4.0}, {-1.5, 1.5}});

  smt::IcpConfig config;
  config.delta = -1.0;  // unreachable: the run is exactly budget-bound
  config.max_boxes = static_cast<std::uint64_t>(
      bench::env_int("BCERT_ICP_BOXES", 20000));
  config.time_limit_s = 300.0;

  // Scalar baseline: one box at a time, the classic frontier.
  config.threads = 1;
  config.batch_size = 1;
  smt::IcpResult seq;
  const double seq_s = wall_of([&] {
    seq = smt::IcpSolver(pool, config).solve(c, box);
  });
  report.add({"icp_branch_and_prune_seq", seq_s,
              static_cast<double>(seq.stats.boxes_processed) / seq_s});

  // Batched frontier (structure-of-arrays tape sweeps, default width).
  // The gated icp_branch_and_prune_batch:speedup ratio tracks batching
  // on the same machine, same budget, same thread count.
  config.batch_size = 0;  // auto (BCERT_ICP_BATCH, default 8)
  smt::IcpResult bat;
  const double bat_s = wall_of([&] {
    bat = smt::IcpSolver(pool, config).solve(c, box);
  });
  bench::BenchRecord batch;
  batch.name = "icp_branch_and_prune_batch";
  batch.wall_time_s = bat_s;
  batch.boxes_per_sec = static_cast<double>(bat.stats.boxes_processed) / bat_s;
  batch.speedup = seq_s / bat_s;
  report.add(batch);

  config.threads = static_cast<int>(parallel::default_thread_count());
  smt::IcpResult par;
  const double par_s = wall_of([&] {
    par = smt::IcpSolver(pool, config).solve(c, box);
  });
  bench::BenchRecord r;
  r.name = "icp_branch_and_prune_parallel";
  r.wall_time_s = par_s;
  r.boxes_per_sec = static_cast<double>(par.stats.boxes_processed) / par_s;
  r.speedup = seq_s / par_s;
  report.add(r);
  std::printf("headline icp: scalar %.3fs, batched %.3fs (%.2fx, %s), "
              "parallel %.3fs (%d threads, %.2fx)\n",
              seq_s, bat_s, batch.speedup,
              smt::simd_tier_name(smt::resolve_simd_tier()), par_s,
              config.threads, r.speedup);
}

/// Warm-vs-cold ICP over a verifier-shaped candidate sequence: the same
/// conjunction *structure* refuted repeatedly while only its constants
/// drift (the LP ↔ SMT pattern: each iteration rebuilds the Lie
/// expression with new W coefficients). The workload is the interval
/// dependency identity c·((x+y)² − x² − 2xy − y²) ≥ ε: identically
/// zero, so the query is UNSAT, but only refutable by subdividing until
/// every enclosure tightens below ε — a deep, deterministic split tree.
/// The warm pass re-seeds each solve from the previous proof's leaf
/// partition (BCERT_ICP_WARM machinery); the cold pass re-derives the
/// tree every time. Gated in CI via icp_warm_sequence:warm_speedup.
void headline_icp_warm(bench::JsonReport& report) {
  const int iters = bench::env_int("BCERT_ICP_WARM_ITERS", 10);
  expr::ExprPool pool;
  const Box box = Box::from_bounds({{-1.0, 1.0}, {-1.0, 1.0}});

  const auto query = [&pool](double coeff) {
    const expr::ExprId x = pool.var(0);
    const expr::ExprId y = pool.var(1);
    const expr::ExprId h = pool.sub(
        pool.sub(pool.sub(pool.sqr(pool.add(x, y)), pool.sqr(x)),
                 pool.mul(pool.constant(2.0), pool.mul(x, y))),
        pool.sqr(y));
    smt::Conjunction q;
    q.add(pool.sub(pool.mul(pool.constant(coeff), h), pool.constant(0.2)),
          smt::Rel::kGe);
    return q;
  };
  std::vector<smt::Conjunction> sequence;
  for (int k = 0; k < iters; ++k) {
    sequence.push_back(query(1.2 + 0.005 * k));
  }

  smt::IcpConfig config;
  config.delta = 1e-3;
  config.max_boxes = 50'000'000;
  config.time_limit_s = 600.0;
  config.threads = 1;

  std::uint64_t cold_boxes = 0, warm_boxes = 0;
  std::uint32_t warm_hits = 0;
  // Best-of-3 per pass (fresh caches each rep), as for the LP headline.
  const auto best_of = [&](const std::function<void()>& fn) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) best = std::min(best, wall_of(fn));
    return best;
  };

  const double cold_s = best_of([&] {
    cold_boxes = 0;
    smt::IcpConfig cold = config;
    cold.warm_start = false;  // pure legacy path: no cache, no recording
    const smt::IcpSolver solver(pool, cold);
    for (const smt::Conjunction& q : sequence) {
      const smt::IcpResult r = solver.solve(q, box);
      cold_boxes += r.stats.boxes_processed;
      benchmark::DoNotOptimize(&r);
    }
  });
  const double warm_s = best_of([&] {
    warm_boxes = 0;
    warm_hits = 0;
    smt::IcpConfig warm = config;
    warm.unsat_cache = std::make_shared<smt::UnsatTreeCache>();
    const smt::IcpSolver solver(pool, warm);
    for (const smt::Conjunction& q : sequence) {
      const smt::IcpResult r = solver.solve(q, box);
      warm_boxes += r.stats.boxes_processed;
      warm_hits += r.stats.warm_starts;
      benchmark::DoNotOptimize(&r);
    }
  });

  report.add({"icp_sequence_cold", cold_s,
              static_cast<double>(cold_boxes) / cold_s});
  report.add({"icp_sequence_warm", warm_s,
              static_cast<double>(warm_boxes) / warm_s});
  bench::BenchRecord combined;
  combined.name = "icp_warm_sequence";
  combined.wall_time_s = cold_s + warm_s;
  combined.warm_speedup = cold_s / warm_s;
  report.add(combined);
  std::printf("headline icp warm: cold %.3fs (%llu boxes), warm %.3fs "
              "(%llu boxes, %u warm-started of %d, warm_speedup %.2fx)\n",
              cold_s, static_cast<unsigned long long>(cold_boxes), warm_s,
              static_cast<unsigned long long>(warm_boxes), warm_hits, iters,
              combined.warm_speedup);
}

/// HC4 contraction throughput, tree-walking vs compiled bytecode tape,
/// on the paper's Table-1 barrier conjunction (Lie derivative of the
/// quadratic certificate through the closed-loop NN dynamics). The
/// measured unit mirrors the ICP hot loop: one contract_fixpoint plus
/// the certainly_satisfied check, over a rotating set of boxes.
void headline_hc4(bench::JsonReport& report) {
  expr::ExprPool pool;
  const smt::Conjunction c = lie_conjunction(pool, 10);
  const int contracts = bench::env_int("BCERT_HC4_CONTRACTS", 4000);

  std::vector<Box> boxes;
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> d(-4.0, 4.0);
  for (int i = 0; i < 64; ++i) {
    double xl = d(rng), xh = d(rng);
    if (xl > xh) std::swap(xl, xh);
    double yl = d(rng) / 3.0, yh = d(rng) / 3.0;
    if (yl > yh) std::swap(yl, yh);
    boxes.push_back(Box::from_bounds({{xl, xh}, {yl, yh}}));
  }

  // Best-of-3 per backend: the headline ratio should reflect the code,
  // not transient scheduler noise on shared CI machines.
  const auto run = [&](smt::Hc4Mode mode) {
    smt::Hc4Contractor contractor(pool, c, mode);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      best = std::min(best, wall_of([&] {
               for (int i = 0; i < contracts; ++i) {
                 Box box = boxes[static_cast<std::size_t>(i) % boxes.size()];
                 if (contractor.contract_fixpoint(box, 8, 0.05) !=
                     smt::ContractResult::kEmpty) {
                   benchmark::DoNotOptimize(
                       contractor.certainly_satisfied(box));
                 }
                 benchmark::DoNotOptimize(box);
               }
             }));
    }
    return best;
  };

  const double tree_s = run(smt::Hc4Mode::kTree);
  report.add({"hc4_contract_tree", tree_s, -1.0, -1.0, contracts / tree_s});

  const double tape_s = run(smt::Hc4Mode::kTape);
  bench::BenchRecord tape;
  tape.name = "hc4_contract_tape";
  tape.wall_time_s = tape_s;
  tape.items_per_sec = contracts / tape_s;
  tape.speedup = tree_s / tape_s;
  report.add(tape);

  const double jit_s = run(smt::Hc4Mode::kJit);
  bench::BenchRecord jit;
  jit.name = "hc4_contract_jit";
  jit.wall_time_s = jit_s;
  jit.items_per_sec = contracts / jit_s;
  jit.speedup = tape_s / jit_s;  // over the tape interpreter, not the tree
  report.add(jit);
  std::printf(
      "headline hc4: tree %.3fs, tape %.3fs (speedup %.2fx), "
      "jit %.3fs (speedup %.2fx over tape)\n",
      tree_s, tape_s, tape.speedup, jit_s, jit.speedup);
}

/// LP warm-starting on the candidate loop's solve sequence: one base
/// margin LP plus BCERT_LP_ITERS refinement steps of 4 appended
/// counterexample rows each (the shape the candidate loop produces). The
/// cold pass solves every step from scratch; the warm pass threads each
/// step's exported basis into the next solve, exactly as the verifiers
/// do. Gated in CI via lp_solve:warm_speedup.
void headline_lp(bench::JsonReport& report) {
  const int base_rows = bench::env_int("BCERT_LP_ROWS", 240);
  const int iters = bench::env_int("BCERT_LP_ITERS", 20);
  constexpr std::size_t kCoeffs = 6;
  constexpr int kAppend = 4;

  // One fixed LP sequence, shared by both passes.
  std::mt19937 rng(23);
  std::vector<lp::LpProblem> sequence;
  sequence.push_back(bench::margin_lp(rng, kCoeffs, base_rows));
  for (int it = 1; it <= iters; ++it) {
    lp::LpProblem next = sequence.back();
    bench::append_margin_rows(next, rng, kAppend);
    sequence.push_back(std::move(next));
  }

  int warm_hits = 0;
  // Best-of-3 per pass, as for the HC4 headline: the gated ratio should
  // reflect the code, not scheduler noise on shared CI machines.
  const auto best_of = [&](const std::function<void()>& fn) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) best = std::min(best, wall_of(fn));
    return best;
  };

  const double cold_s = best_of([&] {
    for (const lp::LpProblem& p : sequence) {
      benchmark::DoNotOptimize(solve_lp(p));
    }
  });
  const double warm_s = best_of([&] {
    warm_hits = 0;
    lp::SimplexOptions opts;
    for (const lp::LpProblem& p : sequence) {
      const lp::LpSolution sol = solve_lp(p, opts);
      warm_hits += sol.used_warm_start ? 1 : 0;
      opts.warm_start = sol.basis;
      benchmark::DoNotOptimize(&sol);
    }
  });

  const double solves = static_cast<double>(sequence.size());
  report.add({"lp_solve_cold", cold_s, -1.0, -1.0, solves / cold_s});
  report.add({"lp_solve_warm", warm_s, -1.0, -1.0, solves / warm_s});
  bench::BenchRecord combined;
  combined.name = "lp_solve";
  combined.wall_time_s = cold_s + warm_s;
  combined.warm_speedup = cold_s / warm_s;
  report.add(combined);
  std::printf("headline lp: cold %.3fs, warm %.3fs over %d solves "
              "(%d warm-started, warm_speedup %.2fx)\n",
              cold_s, warm_s, static_cast<int>(solves), warm_hits,
              combined.warm_speedup);
}

/// The seed's allocating RK4 (fresh temporaries every stage) — kept here
/// verbatim as the baseline the zero-allocation pipeline is measured
/// against.
Vector seed_rk4_step(const ode::VectorField& f, const Vector& x, double h) {
  const Vector k1 = f(x);
  const Vector k2 = f(x + k1 * (h / 2.0));
  const Vector k3 = f(x + k2 * (h / 2.0));
  const Vector k4 = f(x + k3 * h);
  return x + (k1 + 2.0 * k2 + 2.0 * k3 + k4) * (h / 6.0);
}

ode::Trace seed_integrate_rk4(const ode::VectorField& f, const Vector& x0,
                              const ode::IntegrateOptions& opts) {
  ode::Trace trace;
  const auto steps =
      static_cast<std::size_t>(std::ceil(opts.t_end / opts.step));
  trace.reserve(steps + 1);
  Vector x = x0;
  double t = 0.0;
  trace.push_back(t, x);
  for (std::size_t i = 0; i < steps; ++i) {
    const double h = std::min(opts.step, opts.t_end - t);
    if (h <= 0.0) break;
    x = seed_rk4_step(f, x, h);
    t += h;
    trace.push_back(t, x);
  }
  return trace;
}

void headline_rk4(bench::JsonReport& report) {
  const nn::FeedforwardNet net = make_net(10);
  const dubins::ErrorModel model{1.0, 0.0};
  const int rollouts = bench::env_int("BCERT_ROLLOUTS", 100);
  ode::IntegrateOptions opts;
  opts.step = 0.01;
  opts.t_end = 10.0;
  const Vector x0{3.0, 0.5};

  const ode::VectorField legacy = dubins::closed_loop_field(model, net);
  const double seed_s = wall_of([&] {
    for (int i = 0; i < rollouts; ++i) {
      benchmark::DoNotOptimize(seed_integrate_rk4(legacy, x0, opts));
    }
  });
  report.add({"rk4_rollout_seed", seed_s, -1.0, rollouts / seed_s});

  const double inplace_s = wall_of([&] {
    ode::VectorFieldInPlace field =
        dubins::closed_loop_field_inplace(model, net);
    for (int i = 0; i < rollouts; ++i) {
      benchmark::DoNotOptimize(integrate_rk4(field, x0, opts));
    }
  });
  bench::BenchRecord inplace;
  inplace.name = "rk4_rollout_inplace";
  inplace.wall_time_s = inplace_s;
  inplace.simulations_per_sec = rollouts / inplace_s;
  inplace.speedup = seed_s / inplace_s;
  report.add(inplace);

  // Batched rollouts across the pool (the falsifier/CMA-ES pattern:
  // one field instance per strand, results indexed).
  const double batch_s = wall_of([&] {
    parallel::ThreadPool::global().parallel_for(
        0, static_cast<std::size_t>(rollouts), 8,
        [&](std::size_t lo, std::size_t hi) {
          ode::VectorFieldInPlace field =
              dubins::closed_loop_field_inplace(model, net);
          for (std::size_t i = lo; i < hi; ++i) {
            benchmark::DoNotOptimize(integrate_rk4(field, x0, opts));
          }
        });
  });
  bench::BenchRecord batch;
  batch.name = "rk4_rollout_batch_parallel";
  batch.wall_time_s = batch_s;
  batch.simulations_per_sec = rollouts / batch_s;
  batch.speedup = seed_s / batch_s;
  report.add(batch);

  std::printf("headline rk4: seed %.3fs, in-place %.3fs (%.2fx), "
              "parallel batch %.3fs (%.2fx)\n",
              seed_s, inplace_s, inplace.speedup, batch_s, batch.speedup);
}

/// Engine campaign throughput: N structurally identical scenarios — one
/// distilled controller with its weights jittered per scenario (a
/// quantization-robustness sweep, the "as many scenarios as you can
/// imagine" workload of the ROADMAP) — verified (a) cold, with a fresh
/// Engine per scenario (per-run caches only, i.e. the pre-Engine
/// one-shot behavior), vs (b) through one shared Engine campaign where
/// compiled tapes, UNSAT-tree partitions and LP bases amortize across
/// scenarios. BCERT_CAMPAIGN_SCENARIOS scales the set. Gated in CI via
/// engine_campaign:speedup.
void headline_engine_campaign(bench::JsonReport& report) {
  const int n = bench::env_int("BCERT_CAMPAIGN_SCENARIOS", 6);
  expr::ExprPool pool;
  const nn::FeedforwardNet base =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 42);
  std::mt19937 rng(31);
  std::normal_distribution<double> jitter(0.0, 1e-4);

  std::vector<core::Scenario> scenarios;
  scenarios.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    nn::FeedforwardNet net = base;
    Vector params = net.parameters();
    for (std::size_t i = 0; i < params.size(); ++i) params[i] += jitter(rng);
    net.set_parameters(params);
    core::Scenario s;
    s.name = "jitter-" + std::to_string(k);
    s.problem = bench::make_problem(pool, net);
    scenarios.push_back(std::move(s));
  }

  const core::JobOptions job;
  int cold_safe = 0;
  const double cold_s = wall_of([&] {
    cold_safe = 0;
    for (const core::Scenario& s : scenarios) {
      core::Engine engine;  // fresh caches: no cross-scenario reuse
      cold_safe += engine.verify(s.problem, job).safe() ? 1 : 0;
    }
  });

  core::Engine engine;
  core::CampaignResult campaign;
  const double shared_s = wall_of([&] {
    campaign =
        engine.run_campaign(std::span<const core::Scenario>(scenarios), job);
  });

  report.add({"engine_campaign_cold", cold_s, -1.0, -1.0,
              static_cast<double>(n) / cold_s});
  bench::BenchRecord shared;
  shared.name = "engine_campaign_shared";
  shared.wall_time_s = shared_s;
  shared.items_per_sec = campaign.scenarios_per_sec();
  report.add(shared);
  bench::BenchRecord combined;
  combined.name = "engine_campaign";
  combined.wall_time_s = cold_s + shared_s;
  combined.speedup = cold_s / shared_s;
  report.add(combined);
  std::printf("headline engine campaign: cold %.3fs (%d/%d safe), shared "
              "%.3fs (%d/%d safe, %.2f scenarios/s, speedup %.2fx)\n",
              cold_s, cold_safe, n, shared_s, campaign.safe_count, n,
              campaign.scenarios_per_sec(), combined.speedup);
}

void headline_engine_campaign_zoo(bench::JsonReport& report) {
  // The workload-zoo headline: a generated mixed-plant campaign (all
  // five families round-robin, jittered dynamics/weights/regions, mixed
  // quadratic/polynomial templates) through one shared-cache Engine.
  const int n = bench::env_int("BCERT_ZOO_SCENARIOS", 64);
  const int seed = bench::env_int("BCERT_ZOO_SEED", 1);
  scenario::GeneratorConfig config;
  config.seed = static_cast<std::uint64_t>(seed);
  config.count = static_cast<std::size_t>(n);
  config.jitter_templates = true;
  expr::ExprPool pool;
  const std::vector<core::Scenario> scenarios =
      scenario::ScenarioGenerator(pool, config).generate();

  core::Engine engine;
  core::CampaignResult campaign;
  const core::JobOptions job = scenario::zoo_job_defaults();
  const double zoo_s = wall_of([&] {
    campaign =
        engine.run_campaign(std::span<const core::Scenario>(scenarios), job);
  });

  bench::BenchRecord zoo;
  zoo.name = "engine_campaign_zoo";
  zoo.wall_time_s = zoo_s;
  zoo.items_per_sec = campaign.scenarios_per_sec();
  report.add(zoo);
  std::printf("headline engine campaign zoo: %d generated scenarios in "
              "%.3fs (%d safe, %d failed, %.2f scenarios/s)\n",
              n, zoo_s, campaign.safe_count, campaign.failed_count,
              campaign.scenarios_per_sec());
}

/// The `bcertd` restart headline: the same generated zoo suite verified
/// (a) by a cold Engine and (b) by a fresh Engine restored from the
/// first one's warm-state snapshot — round-tripped through the real
/// serialization container (encode_snapshot → decode_snapshot), exactly
/// what a daemon restart does minus the socket. The verdicts are
/// bit-identical by the warm-state contract; the gated ratio is the
/// restart's payoff: compiled tapes, refutation trees and LP bases
/// survive the process boundary. BCERT_RESTART_SCENARIOS scales the
/// suite. Gated in CI via bcertd_warm_restart:warm_speedup.
void headline_bcertd_warm_restart(bench::JsonReport& report) {
  const int n = bench::env_int("BCERT_RESTART_SCENARIOS", 6);
  scenario::GeneratorConfig config;
  config.seed = 7;
  config.count = static_cast<std::size_t>(n);
  const core::JobOptions job = scenario::zoo_job_defaults();

  const auto run_suite = [&](core::Engine& engine) {
    expr::ExprPool pool;
    const std::vector<core::Scenario> scenarios =
        scenario::ScenarioGenerator(pool, config).generate();
    core::CampaignResult campaign;
    const double elapsed = wall_of([&] {
      campaign =
          engine.run_campaign(std::span<const core::Scenario>(scenarios), job);
    });
    return std::make_pair(elapsed, campaign.safe_count);
  };

  core::Engine cold_engine;
  const auto [cold_s, cold_safe] = run_suite(cold_engine);

  // The snapshot round trip a daemon restart performs.
  const std::vector<std::uint8_t> snapshot =
      smt::encode_snapshot(cold_engine.export_warm_state());
  smt::WarmState restored;
  std::string error;
  if (!smt::decode_snapshot(snapshot.data(), snapshot.size(), restored,
                            &error)) {
    std::printf("headline bcertd restart: snapshot rejected (%s)\n",
                error.c_str());
    return;
  }
  core::Engine warm_engine;
  warm_engine.import_warm_state(std::move(restored));
  const auto [warm_s, warm_safe] = run_suite(warm_engine);

  bench::BenchRecord cold;
  cold.name = "bcertd_restart_cold";
  cold.wall_time_s = cold_s;
  cold.items_per_sec = static_cast<double>(n) / cold_s;
  report.add(cold);
  bench::BenchRecord warm;
  warm.name = "bcertd_restart_warm";
  warm.wall_time_s = warm_s;
  warm.items_per_sec = static_cast<double>(n) / warm_s;
  report.add(warm);
  bench::BenchRecord combined;
  combined.name = "bcertd_warm_restart";
  combined.wall_time_s = cold_s + warm_s;
  combined.warm_speedup = cold_s / warm_s;
  report.add(combined);
  std::printf(
      "headline bcertd restart: cold %.3fs (%d/%d safe), snapshot %zu "
      "bytes, restarted %.3fs (%d/%d safe, warm speedup %.2fx, "
      "%llu tape + %llu tree restores)\n",
      cold_s, cold_safe, n, snapshot.size(), warm_s, warm_safe, n,
      combined.warm_speedup,
      static_cast<unsigned long long>(warm_engine.tape_cache().warm_restores()),
      static_cast<unsigned long long>(
          warm_engine.unsat_cache().warm_restores()));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::JsonReport report("micro");
  headline_hc4(report);
  headline_icp(report);
  headline_icp_warm(report);
  headline_lp(report);
  headline_rk4(report);
  headline_engine_campaign(report);
  headline_engine_campaign_zoo(report);
  headline_bcertd_warm_restart(report);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
