#pragma once
/// \file box_batch.h
/// \brief Structure-of-arrays batch of boxes — the currency of the
/// batched ICP contraction pipeline.
///
/// A `BoxBatch` holds up to `capacity` boxes of a fixed dimension as two
/// dense planes (all lower bounds, then all upper bounds), laid out
/// dimension-major:
///
///     lo_plane(d)[i] = lower bound of box i in dimension d
///     hi_plane(d)[i] = upper bound of box i in dimension d
///
/// Each plane row is 32-byte aligned (the allocation is 64-byte aligned
/// and the per-dimension stride is padded to 8 doubles), so the batched
/// tape kernels can stream whole sibling groups with aligned SIMD loads.
/// Boxes inside a batch are independent lanes: the batched contractor
/// narrows each lane exactly as the scalar contractor would narrow the
/// corresponding `Box`, bit for bit.
///
/// The batch is a *staging* structure, not a container of record: the ICP
/// frontier still stores `Box` objects; a batch is filled from popped
/// frontier boxes, contracted in place, and surviving lanes are
/// materialized back into `Box` children.

#include <cstddef>

#include "src/interval/box.h"
#include "src/interval/interval.h"
#include "src/linalg/vector.h"

namespace bcert::interval {

/// Fixed-capacity structure-of-arrays box batch (see file comment).
class BoxBatch {
 public:
  BoxBatch() = default;

  /// Batch for boxes of \p dims dimensions, holding up to \p capacity.
  BoxBatch(std::size_t dims, std::size_t capacity);

  std::size_t dims() const { return dims_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Forgets all lanes (planes keep their storage).
  void clear() { size_ = 0; }

  /// Appends \p b as a new lane. \p b must have exactly dims()
  /// dimensions and the batch must not be full.
  void push_back(const Box& b);

  /// Materializes lane \p i as a Box.
  Box box(std::size_t i) const;

  /// Interval of lane \p i in dimension \p d.
  Interval dim(std::size_t i, std::size_t d) const {
    return Interval(lo_plane(d)[i], hi_plane(d)[i]);
  }
  void set_dim(std::size_t i, std::size_t d, const Interval& v) {
    lo_plane(d)[i] = v.lo();
    hi_plane(d)[i] = v.hi();
  }

  /// True when any dimension of lane \p i is empty.
  bool lane_is_empty(std::size_t i) const;

  /// Maximum dimension width of lane \p i (Box::max_width twin).
  double max_width(std::size_t i) const;

  /// Sum of dimension widths of lane \p i (Box::perimeter twin).
  double perimeter(std::size_t i) const;

  double* lo_plane(std::size_t d) { return lo_.get() + d * stride_; }
  double* hi_plane(std::size_t d) { return hi_.get() + d * stride_; }
  const double* lo_plane(std::size_t d) const { return lo_.get() + d * stride_; }
  const double* hi_plane(std::size_t d) const { return hi_.get() + d * stride_; }

 private:
  std::size_t dims_ = 0;
  std::size_t capacity_ = 0;
  std::size_t stride_ = 0;  ///< doubles per plane row (capacity padded to 8)
  std::size_t size_ = 0;
  linalg::AlignedDoubles lo_;
  linalg::AlignedDoubles hi_;
};

}  // namespace bcert::interval
