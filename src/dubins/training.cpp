#include "src/dubins/training.h"

#include <cmath>

#include "src/nn/elm.h"

namespace bcert::dubins {

double path_following_cost(const ClosedLoopTrace& trace,
                           const PiecewiseLinearPath& path,
                           const CostWeights& w) {
  double j = 0.0;
  for (const ClosedLoopSample& s : trace.samples) {
    j += w.distance * s.error.distance * s.error.distance +
         w.angle * s.error.angle * s.error.angle + w.control * s.u * s.u;
  }
  const ClosedLoopSample& last = trace.samples.back();
  const Point2 end = path.end();
  const double ex = end.x - last.state.x, ey = end.y - last.state.y;
  j += w.endpoint * (ex * ex + ey * ey);
  return j;
}

SteeringController as_controller(const nn::FeedforwardNet& net) {
  const nn::FeedforwardNet copy = net;
  return [copy](double d_err, double theta_err) {
    return copy.forward(linalg::Vector{d_err, theta_err})[0];
  };
}

SteeringController proportional_teacher(double k_d, double k_th) {
  return [k_d, k_th](double d_err, double theta_err) {
    // Positive d_err (left of path) should steer right: in the paper's
    // convention θ̇_err = −u, and reducing a positive d_err needs a
    // negative θ_err, i.e. u > 0 pushes θ_err down. Hence +k_d·d.
    return std::tanh(k_d * d_err + k_th * theta_err);
  };
}

std::vector<std::pair<double, double>> verification_offsets() {
  return {{0.0, 0.0}, {4.0, 0.0},  {-4.0, 0.0}, {2.0, -1.2},
          {-2.0, 1.2}, {4.0, 1.2}, {-4.0, -1.2}};
}

VehicleState offset_start(const PiecewiseLinearPath& path, double d_err,
                          double theta_err) {
  const Point2 p0 = path.start();
  const Point2 p1 = path.waypoints()[1];
  const double len = std::hypot(p1.x - p0.x, p1.y - p0.y);
  const double sx = (p1.x - p0.x) / len, sy = (p1.y - p0.y) / len;
  const double theta_r = heading_of(sx, sy);
  // Left-normal n satisfies cross(s, n) = +1, so displacing by d_err·n
  // realizes exactly that signed distance error.
  VehicleState s;
  s.x = p0.x - d_err * sy;
  s.y = p0.y + d_err * sx;
  s.theta = theta_r - theta_err;
  return s;
}

TrainResult train_controller(const PiecewiseLinearPath& path,
                             const TrainOptions& opts,
                             const SnapshotCallback& snapshot) {
  nn::FeedforwardNet proto =
      nn::FeedforwardNet::single_hidden(2, opts.hidden_neurons, 1);

  // Start poses: the base pose shifted by each requested error offset.
  std::vector<VehicleState> starts;
  starts.reserve(opts.start_offsets.size());
  for (const auto& [d0, th0] : opts.start_offsets) {
    if (d0 == 0.0 && th0 == 0.0) {
      starts.push_back(opts.initial);
    } else {
      starts.push_back(offset_start(path, d0, th0));
    }
  }

  // Objective: roll out the candidate policy from every start pose and
  // sum the paper's cost.
  const auto objective = [&](const linalg::Vector& params) {
    nn::FeedforwardNet net = proto;
    net.set_parameters(params);
    double total = 0.0;
    for (const VehicleState& s0 : starts) {
      const ClosedLoopTrace trace =
          simulate_path_following(path, as_controller(net), s0, opts.sim);
      total += path_following_cost(trace, path, opts.weights);
    }
    return total;
  };

  // Random initial parameters (the paper also starts from random
  // weights; Figure 4(a) shows the resulting wandering behaviour).
  std::mt19937 rng(opts.seed);
  proto.randomize(rng, 1.0);
  const linalg::Vector x0 = proto.parameters();

  cmaes::CmaesOptions copts;
  copts.lambda = opts.population;
  copts.sigma0 = opts.sigma0;
  copts.max_iterations = opts.iterations;
  copts.seed = opts.seed + 1;
  // Full covariance up to a few hundred parameters, separable beyond.
  copts.diagonal_only = x0.size() > 400;
  // The objective above touches only thread-private state (fresh net per
  // call, read-only starts/path), so population rollouts can batch
  // across the pool.
  copts.eval_threads = opts.threads;

  cmaes::IterationCallback cb;
  if (snapshot) {
    cb = [&](const cmaes::CmaesIteration& info) {
      TrainingSnapshot snap;
      snap.iteration = info.iteration;
      snap.best_cost = info.best_fitness;
      snap.controller = proto;
      snap.controller.set_parameters(info.best_x);
      snapshot(snap);
    };
  }

  const cmaes::CmaesResult r = cmaes_minimize(objective, x0, copts, cb);

  TrainResult out;
  out.controller = proto;
  out.controller.set_parameters(r.best_x);
  out.best_cost = r.best_fitness;
  out.cost_history = r.fitness_history;
  return out;
}

nn::FeedforwardNet distill_controller(const SteeringController& teacher,
                                      std::size_t hidden, unsigned seed,
                                      double d_range, double theta_range) {
  nn::ElmOptions opts;
  opts.hidden = hidden;
  opts.samples = std::max<std::size_t>(4 * hidden, 600);
  opts.seed = seed;
  const nn::TeacherFn fn = [&teacher](const linalg::Vector& x) {
    return linalg::Vector{teacher(x[0], x[1])};
  };
  return nn::elm_fit(fn, 2, 1, linalg::Vector{-d_range, -theta_range},
                     linalg::Vector{d_range, theta_range}, opts);
}

}  // namespace bcert::dubins
