#pragma once
/// \file ctrnn.h
/// \brief Continuous-time recurrent neural network controllers.
///
/// The paper's future work (§5) targets *stateful* controllers based on
/// recurrent networks, noting that "a stateful controller will increase
/// the query complexity of the verification question". A continuous-time
/// RNN (CTRNN) realizes this cleanly inside the paper's own formalism:
/// the controller state h obeys
///
///     τ·ḣ = −h + act(Wx·y + Wh·h + b),     u = Wo·h + bo,
///
/// so composing plant and controller still yields an autonomous ODE —
/// now in the augmented state (x, h) — and the *same* barrier-certificate
/// machinery applies, with the query dimension grown by the hidden size
/// (exactly the predicted complexity increase; see
/// tests/ctrnn_test.cpp and bench_ablation_rnn).
///
/// With tanh activation the hidden box [−1, 1]^k is forward-invariant
/// (at h_i = 1, τ·ḣ_i = −1 + tanh(…) ≤ 0), which gives a natural safe
/// range for the augmented dimensions.

#include <random>
#include <vector>

#include "src/expr/expr.h"
#include "src/linalg/matrix.h"
#include "src/linalg/vector.h"
#include "src/nn/activation.h"

namespace bcert::nn {

/// A single-layer CTRNN: k hidden units, m inputs, p outputs.
class Ctrnn {
 public:
  Ctrnn() = default;

  /// Zero-weight network of the given shape.
  Ctrnn(std::size_t inputs, std::size_t hidden, std::size_t outputs,
        double tau = 0.2, Activation act = Activation::kTanh);

  std::size_t num_inputs() const { return wx_.cols(); }
  std::size_t num_hidden() const { return wx_.rows(); }
  std::size_t num_outputs() const { return wo_.rows(); }
  double tau() const { return tau_; }

  linalg::Matrix& wx() { return wx_; }
  linalg::Matrix& wh() { return wh_; }
  linalg::Vector& bias() { return bias_; }
  linalg::Matrix& wo() { return wo_; }
  linalg::Vector& out_bias() { return out_bias_; }
  const linalg::Matrix& wx() const { return wx_; }
  const linalg::Matrix& wh() const { return wh_; }
  const linalg::Vector& bias() const { return bias_; }
  const linalg::Matrix& wo() const { return wo_; }
  const linalg::Vector& out_bias() const { return out_bias_; }

  /// Output u = Wo·h + bo for the current hidden state.
  linalg::Vector output(const linalg::Vector& h) const;

  /// Hidden derivative ḣ = (−h + act(Wx·y + Wh·h + b)) / τ.
  linalg::Vector hidden_derivative(const linalg::Vector& y,
                                   const linalg::Vector& h) const;

  /// Reusable buffers for the allocation-free evaluation path. One
  /// scratch per thread; contents are overwritten on every call.
  struct Scratch {
    linalg::Vector pre, rec;
  };

  /// Allocation-free output into \p u (resized to num_outputs());
  /// bit-identical to output().
  void output_inplace(const linalg::Vector& h, linalg::Vector& u) const;

  /// Allocation-free hidden derivative into \p dh (resized to
  /// num_hidden()); bit-identical to hidden_derivative().
  void hidden_derivative_inplace(const linalg::Vector& y,
                                 const linalg::Vector& h, linalg::Vector& dh,
                                 Scratch& scratch) const;

  /// Total parameter count: |Wx| + |Wh| + |b| + |Wo| + |bo|.
  std::size_t num_params() const;

  /// Flattened parameters (Wx row-major, Wh row-major, b, Wo row-major,
  /// bo) — the same layout discipline as FeedforwardNet::parameters(),
  /// so generic weight-perturbation code (the scenario generator) treats
  /// both controller families uniformly.
  linalg::Vector parameters() const;

  /// Loads flattened parameters; size must equal num_params().
  void set_parameters(const linalg::Vector& params);

  /// Symbolic output over hidden-state expressions.
  std::vector<expr::ExprId> output_expr(
      expr::ExprPool& pool, const std::vector<expr::ExprId>& h) const;

  /// Symbolic hidden derivatives over input and hidden expressions.
  std::vector<expr::ExprId> hidden_derivative_expr(
      expr::ExprPool& pool, const std::vector<expr::ExprId>& y,
      const std::vector<expr::ExprId>& h) const;

  /// Random init (scaled like FeedforwardNet::randomize).
  void randomize(std::mt19937& rng, double scale = 1.0);

  /// The lagged realization of a static single-output policy
  /// `u* = tanh(gains·y)`: one hidden unit with ḣ = (−h + tanh(g·y))/τ
  /// and u = h. Converges to the static teacher as τ → 0.
  static Ctrnn lagged_policy(const linalg::Vector& gains, double tau);

 private:
  linalg::Matrix wx_;        // hidden × inputs
  linalg::Matrix wh_;        // hidden × hidden
  linalg::Vector bias_;      // hidden
  linalg::Matrix wo_;        // outputs × hidden
  linalg::Vector out_bias_;  // outputs
  double tau_ = 0.2;
  Activation act_ = Activation::kTanh;
};

}  // namespace bcert::nn
