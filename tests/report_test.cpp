// Tests for certificate report generation (text + JSON).
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/report.h"
#include "src/core/verifier.h"
#include "src/dubins/error_dynamics.h"
#include "src/dubins/training.h"

namespace bcert::core {
namespace {

constexpr double kPi = 3.14159265358979323846;

struct Fixture {
  expr::ExprPool pool;
  BarrierProblem problem;
  VerifyResult result;

  Fixture() {
    const nn::FeedforwardNet controller =
        dubins::distill_controller(dubins::proportional_teacher(), 10, 42);
    const dubins::ErrorModel model{1.0, 0.0};
    problem.pool = &pool;
    problem.sim_field = dubins::closed_loop_field(model, controller);
    problem.sym_field =
        dubins::closed_loop_field_expr(model, controller, pool);
    problem.initial_set = {{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
    problem.safe_rect = {{-5.0, -(kPi / 2.0 - 0.01)},
                         {5.0, kPi / 2.0 - 0.01}};
    BarrierVerifier verifier(problem, {});
    result = verifier.verify();
  }
};

TEST(Report, TextContainsVerdictAndCertificate) {
  Fixture fx;
  ASSERT_TRUE(fx.result.safe());
  std::ostringstream os;
  ReportContext ctx;
  ctx.system_name = "dubins-path-following";
  ctx.controller_description = "10-neuron tansig (distilled)";
  write_text_report(os, fx.result, fx.problem, ctx);
  const std::string s = os.str();
  EXPECT_NE(s.find("SAFE"), std::string::npos);
  EXPECT_NE(s.find("dubins-path-following"), std::string::npos);
  EXPECT_NE(s.find("10-neuron tansig"), std::string::npos);
  EXPECT_NE(s.find("level l ="), std::string::npos);
  EXPECT_NE(s.find("W coefficients"), std::string::npos);
  EXPECT_NE(s.find("Table-1 columns"), std::string::npos);
}

TEST(Report, JsonWellFormedAndComplete) {
  Fixture fx;
  const std::string json = json_report(fx.result, fx.problem);
  // Structural spot checks (no JSON lib on purpose — the format is
  // simple enough to assert directly).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline after '}'
  for (const char* key :
       {"\"verdict\"", "\"safe\"", "\"gamma\"", "\"delta\"",
        "\"initial_set\"", "\"safe_rect\"", "\"generator_coeffs\"",
        "\"level\"", "\"lp_margin\"", "\"timings\"",
        "\"candidate_iterations\"", "\"total_time_s\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"safe\": true"), std::string::npos);
  // Balanced braces and brackets.
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Report, EscapesSpecialCharacters) {
  Fixture fx;
  ReportContext ctx;
  ctx.system_name = "quote\" and \\backslash";
  const std::string json = json_report(fx.result, fx.problem, ctx);
  EXPECT_NE(json.find("quote\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\backslash"), std::string::npos);
}

TEST(Report, UnsafeResultReportsHonestly) {
  Fixture fx;
  VerifyResult failed;
  failed.status = VerifyStatus::kLpInfeasible;
  std::ostringstream os;
  write_text_report(os, failed, fx.problem);
  const std::string s = os.str();
  EXPECT_NE(s.find("no-conclusion(LP-infeasible)"), std::string::npos);
  EXPECT_EQ(s.find("SAFE for"), std::string::npos);
  const std::string json = json_report(failed, fx.problem);
  EXPECT_NE(json.find("\"safe\": false"), std::string::npos);
}

}  // namespace
}  // namespace bcert::core
