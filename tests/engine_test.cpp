// Tests for the unified verification Engine: differential equivalence
// with the deprecated verifier shims, cross-scenario cache sharing,
// async submission, cooperative cancellation, deadlines, and campaigns.
#include "src/core/engine.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/poly_verifier.h"
#include "src/core/verifier.h"
#include "src/dubins/error_dynamics.h"
#include "src/dubins/training.h"

namespace bcert::core {
namespace {

using linalg::Vector;
constexpr double kPi = 3.14159265358979323846;

/// The paper's Dubins case study with a distilled controller — a real
/// workload whose candidate loop typically takes several CEX rounds.
BarrierProblem dubins_problem(expr::ExprPool& pool,
                              const nn::FeedforwardNet& controller) {
  const dubins::ErrorModel model{1.0, 0.0};
  BarrierProblem p;
  p.pool = &pool;
  p.sim_field = dubins::closed_loop_field(model, controller);
  p.sym_field = dubins::closed_loop_field_expr(model, controller, pool);
  p.initial_set = {{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
  p.safe_rect = {{-5.0, -(kPi / 2.0 - 0.01)}, {5.0, kPi / 2.0 - 0.01}};
  return p;
}

/// Analytic workload: ẋ = −x decays to the origin, the first LP
/// candidate is already a valid generator, and the whole pipeline is
/// deterministic at threads = 1 (no SAT witnesses ever enter the loop).
BarrierProblem linear_problem(expr::ExprPool& pool) {
  BarrierProblem p;
  p.pool = &pool;
  p.sim_field = [](const Vector& x) { return Vector{-x[0], -x[1]}; };
  p.sym_field = {pool.neg(pool.var(0)), pool.neg(pool.var(1))};
  p.initial_set = {{-0.5, -0.5}, {0.5, 0.5}};
  p.safe_rect = {{-2.0, -2.0}, {2.0, 2.0}};
  return p;
}

/// Deterministic options (sequential ICP; parallel SAT-witness selection
/// is allowed to differ between runs by contract).
JobOptions deterministic_options() {
  JobOptions opts;
  opts.verify.icp.threads = 1;
  return opts;
}

void expect_bit_identical(const VerifyResult& a, const VerifyResult& b) {
  ASSERT_EQ(a.status, b.status)
      << verify_status_name(a.status) << " vs " << verify_status_name(b.status);
  EXPECT_EQ(a.template_kind, b.template_kind);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.lp_margin, b.lp_margin);
  ASSERT_EQ(a.has_generator(), b.has_generator());
  if (a.has_generator()) {
    const Vector& ca = a.generator_coeffs();
    const Vector& cb = b.generator_coeffs();
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i], cb[i]) << "coefficient " << i;
    }
  }
  ASSERT_EQ(a.counterexamples.size(), b.counterexamples.size());
  for (std::size_t i = 0; i < a.counterexamples.size(); ++i) {
    for (std::size_t d = 0; d < a.counterexamples[i].size(); ++d) {
      EXPECT_EQ(a.counterexamples[i][d], b.counterexamples[i][d]);
    }
  }
  EXPECT_EQ(a.timings.candidate_iterations, b.timings.candidate_iterations);
  EXPECT_EQ(a.timings.lp_solves, b.timings.lp_solves);
  EXPECT_EQ(a.timings.smt5_queries, b.timings.smt5_queries);
}

// The acceptance bar of the redesign: the deprecated shim and the
// Engine single-job path run the same pipeline and must produce
// bit-identical results (fresh Engine ⇒ empty caches, exactly the
// shim's per-run state).
TEST(Engine, SingleJobBitIdenticalToDeprecatedShim) {
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 42);

  expr::ExprPool pool_shim;
  const JobOptions opts = deterministic_options();
  BarrierVerifier shim(dubins_problem(pool_shim, controller), opts.verify);
  const VerifyResult shim_result = shim.verify();

  expr::ExprPool pool_engine;
  Engine engine;
  const VerifyResult engine_result =
      engine.verify(dubins_problem(pool_engine, controller), opts);

  ASSERT_TRUE(shim_result.safe())
      << verify_status_name(shim_result.status);
  expect_bit_identical(shim_result, engine_result);
}

TEST(Engine, PolynomialJobBitIdenticalToDeprecatedShim) {
  expr::ExprPool pool_shim;
  PolyVerifierOptions popts;
  popts.base.icp.threads = 1;
  popts.max_degree = 2;
  PolyBarrierVerifier shim(linear_problem(pool_shim), popts);
  const VerifyResult shim_result = shim.verify();

  expr::ExprPool pool_engine;
  Engine engine;
  JobOptions opts = deterministic_options();
  opts.certificate = TemplateSpec::polynomial(2);
  const VerifyResult engine_result =
      engine.verify(linear_problem(pool_engine), opts);

  ASSERT_TRUE(shim_result.safe())
      << verify_status_name(shim_result.status);
  EXPECT_TRUE(shim_result.poly_generator.has_value());
  EXPECT_FALSE(shim_result.generator.has_value());
  expect_bit_identical(shim_result, engine_result);
}

// Engine-level cache sharing: two structurally identical scenarios
// through one Engine must reuse compiled tapes and UNSAT trees across
// scenarios, and the results must be bit-identical to fresh single-shot
// runs. (share_lp_basis is off here so the second scenario's LP
// sequence is exactly a fresh run's; the ICP warm machinery itself
// never changes results on this SAT-free workload.)
TEST(Engine, CampaignSharesCachesAcrossScenarios) {
  // Armed cache_lookup / tape_compile faults legitimately change the
  // cache counters this test pins (cold starts are the intended
  // degradation); results stay correct, so just skip the stats checks.
  core::RuntimeConfig::active();  // installs any BCERT_FAULT spec
  if (core::FaultRegistry::enabled()) {
    GTEST_SKIP() << "fault injection armed: cache stats not stable";
  }
  EngineOptions eo;
  eo.share_lp_basis = false;
  Engine engine(eo);
  const JobOptions opts = deterministic_options();

  // One shared pool: identical scenarios hash-cons to identical
  // ExprIds, so even the tape cache (which keys on expression identity,
  // not just structure) can hit across scenarios.
  expr::ExprPool pool;
  const BarrierProblem problem = linear_problem(pool);

  const VerifyResult first = engine.verify(problem, opts);
  ASSERT_TRUE(first.safe()) << verify_status_name(first.status);

  const smt::KeyedCacheStats tape_before = engine.tape_cache().stats();
  const smt::KeyedCacheStats unsat_before = engine.unsat_cache().stats();

  const VerifyResult second = engine.verify(problem, opts);
  ASSERT_TRUE(second.safe()) << verify_status_name(second.status);

  const smt::KeyedCacheStats tape_after = engine.tape_cache().stats();
  const smt::KeyedCacheStats unsat_after = engine.unsat_cache().stats();

  // Cross-scenario reuse: the second scenario hit both caches (the
  // tape cache only participates when the tape backend is active —
  // under BCERT_HC4_MODE=tree nothing compiles tapes at all)...
  if (smt::resolve_hc4_mode(smt::Hc4Mode::kAuto) == smt::Hc4Mode::kTape) {
    EXPECT_GT(tape_after.hits, tape_before.hits);
    // ...and compiled no new tapes (every conjunction was cached).
    EXPECT_EQ(tape_after.insertions, tape_before.insertions);
  }
  // ...as above, UNSAT-tree reuse only exists while warm starts are on
  // (BCERT_ICP_WARM=0 runs everything cold by design).
  if (core::RuntimeConfig::active().icp_warm != core::ConfigToggle::kOff) {
    EXPECT_GT(unsat_after.hits, unsat_before.hits);
  }

  // Shared caches must not change answers: both runs bit-identical to a
  // fresh single-shot Engine run.
  Engine fresh(eo);
  const VerifyResult cold = fresh.verify(problem, opts);
  expect_bit_identical(cold, first);
  expect_bit_identical(cold, second);
}

TEST(Engine, SubmitRunsAsynchronouslyOnEnginePool) {
  expr::ExprPool pool;
  Engine engine;
  JobHandle handle = engine.submit(linear_problem(pool),
                                   deterministic_options());
  ASSERT_TRUE(handle.valid());
  const VerifyResult result = handle.get();
  EXPECT_TRUE(handle.done());
  EXPECT_TRUE(result.safe()) << verify_status_name(result.status);
  EXPECT_EQ(engine.jobs_submitted(), 1u);
}

TEST(Engine, ProgressCallbackSeesAllPhases) {
  expr::ExprPool pool;
  Engine engine;
  std::mutex m;
  std::vector<JobPhase> phases;
  JobOptions opts = deterministic_options();
  opts.on_progress = [&](const JobProgress& p) {
    std::lock_guard<std::mutex> lock(m);
    phases.push_back(p.phase);
  };
  const VerifyResult result = engine.verify(linear_problem(pool), opts);
  ASSERT_TRUE(result.safe());
  ASSERT_GE(phases.size(), 4u);
  EXPECT_EQ(phases.front(), JobPhase::kSeeding);
  EXPECT_EQ(phases.back(), JobPhase::kDone);
  bool saw_candidate = false, saw_level = false;
  for (const JobPhase p : phases) {
    saw_candidate = saw_candidate || p == JobPhase::kCandidateLoop;
    saw_level = saw_level || p == JobPhase::kLevelSet;
  }
  EXPECT_TRUE(saw_candidate);
  EXPECT_TRUE(saw_level);
}

/// A job whose candidate loop never converges: γ is so large that the
/// decrease query is SAT every round, so the CEX loop would grind
/// through max_candidate_iterations (set absurdly high) forever.
JobOptions endless_candidate_loop_options() {
  JobOptions opts = deterministic_options();
  opts.verify.gamma = 50.0;  // lie ≥ −16 on the domain ⇒ always SAT
  opts.verify.adaptive_delta = false;
  opts.verify.max_candidate_iterations = 1'000'000;
  return opts;
}

TEST(Engine, CancellationStopsJobMidCandidateLoop) {
  expr::ExprPool pool;
  Engine engine;
  JobHandle handle =
      engine.submit(linear_problem(pool), endless_candidate_loop_options());

  // Let the job get into the candidate loop, then cancel.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  handle.cancel();

  const auto t0 = std::chrono::steady_clock::now();
  const VerifyResult result = handle.get();
  const double wait_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  EXPECT_EQ(result.status, VerifyStatus::kCancelled)
      << verify_status_name(result.status);
  EXPECT_FALSE(result.safe());
  EXPECT_LT(wait_s, 30.0);  // prompt, not after 10^6 iterations

  // No leaked pool tasks: the pool immediately accepts and completes
  // further work, and Engine destruction (scope exit) does not hang.
  expr::ExprPool pool2;
  const VerifyResult next =
      engine.verify(linear_problem(pool2), deterministic_options());
  EXPECT_TRUE(next.safe());
}

TEST(Engine, DeadlineExpiresMidCandidateLoop) {
  expr::ExprPool pool;
  Engine engine;
  JobOptions opts = endless_candidate_loop_options();
  opts.deadline_s = 0.3;
  const auto t0 = std::chrono::steady_clock::now();
  const VerifyResult result = engine.verify(linear_problem(pool), opts);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(result.status, VerifyStatus::kDeadlineExceeded)
      << verify_status_name(result.status);
  EXPECT_LT(wall_s, 30.0);
}

TEST(Engine, RunCampaignReportsPerScenarioAndAggregate) {
  expr::ExprPool pool;
  Engine engine;
  std::vector<Scenario> scenarios;
  scenarios.push_back({"nominal", linear_problem(pool)});
  scenarios.push_back({"repeat", linear_problem(pool)});

  const CampaignResult campaign =
      engine.run_campaign(std::span<const Scenario>(scenarios),
                          deterministic_options());

  ASSERT_EQ(campaign.scenarios.size(), 2u);
  EXPECT_EQ(campaign.scenarios[0].name, "nominal");
  EXPECT_EQ(campaign.scenarios[1].name, "repeat");
  EXPECT_EQ(campaign.safe_count, 2);
  EXPECT_GT(campaign.wall_time_s, 0.0);
  EXPECT_GT(campaign.scenarios_per_sec(), 0.0);

  // Aggregate = column-wise sum of the scenario timings.
  int iters = 0;
  double total = 0.0;
  for (const ScenarioOutcome& s : campaign.scenarios) {
    EXPECT_TRUE(s.result.safe()) << s.name;
    iters += s.result.timings.candidate_iterations;
    total += s.result.timings.total_time_s;
  }
  EXPECT_EQ(campaign.aggregate.candidate_iterations, iters);
  EXPECT_DOUBLE_EQ(campaign.aggregate.total_time_s, total);

  const std::string json = campaign.to_json();
  EXPECT_NE(json.find("\"nominal\""), std::string::npos);
  EXPECT_NE(json.find("\"repeat\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
  EXPECT_NE(json.find("\"scenarios_per_sec\""), std::string::npos);
}

TEST(Engine, DestructionWaitsForAbandonedSubmittedJobs) {
  // Submit and immediately drop both the handle and the Engine: the
  // queued job must run to completion against live Engine members
  // (pool_ is destroyed first, draining jobs, before the caches and
  // the warm-basis store go away).
  expr::ExprPool pool;
  {
    Engine engine;
    (void)engine.submit(linear_problem(pool), deterministic_options());
    // ~Engine here, with the job possibly still queued.
  }
  SUCCEED();
}

TEST(Engine, InvalidJobHandleThrowsInsteadOfCrashing) {
  JobHandle empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW(empty.get(), std::logic_error);
  EXPECT_THROW(empty.done(), std::logic_error);
  EXPECT_THROW(empty.wait_for(0.0), std::logic_error);
  EXPECT_THROW(empty.cancel(), std::logic_error);
}

TEST(Engine, CampaignJsonEscapesScenarioNames) {
  expr::ExprPool pool;
  Engine engine;
  std::vector<Scenario> scenarios;
  scenarios.push_back({"quote\"back\\slash", linear_problem(pool)});
  const CampaignResult campaign = engine.run_campaign(
      std::span<const Scenario>(scenarios), deterministic_options());
  const std::string json = campaign.to_json();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_EQ(json.find("quote\"back"), std::string::npos);
}

TEST(Engine, CampaignOverProblemSpanNamesScenarios) {
  expr::ExprPool pool;
  Engine engine;
  std::vector<BarrierProblem> problems{linear_problem(pool),
                                       linear_problem(pool)};
  const CampaignResult campaign = engine.run_campaign(
      std::span<const BarrierProblem>(problems), deterministic_options());
  ASSERT_EQ(campaign.scenarios.size(), 2u);
  EXPECT_EQ(campaign.scenarios[0].name, "scenario-0");
  EXPECT_EQ(campaign.scenarios[1].name, "scenario-1");
  EXPECT_EQ(campaign.safe_count, 2);
}

}  // namespace
}  // namespace bcert::core
