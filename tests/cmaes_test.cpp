// Tests for the CMA-ES optimizer (full and separable variants).
#include <cmath>

#include <gtest/gtest.h>

#include "src/cmaes/cmaes.h"

namespace bcert::cmaes {
namespace {

using linalg::Vector;

double sphere(const Vector& x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

double rosenbrock(const Vector& x) {
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const double a = x[i + 1] - x[i] * x[i];
    const double b = 1.0 - x[i];
    acc += 100.0 * a * a + b * b;
  }
  return acc;
}

double ellipsoid(const Vector& x) {
  // Badly conditioned quadratic — exercises covariance adaptation.
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double w = std::pow(1e4, static_cast<double>(i) /
                                        static_cast<double>(x.size() - 1));
    acc += w * x[i] * x[i];
  }
  return acc;
}

TEST(Cmaes, SolvesSphere) {
  CmaesOptions opts;
  opts.max_iterations = 200;
  opts.tol_fun = 1e-12;
  const CmaesResult r = cmaes_minimize(sphere, Vector{2.0, -1.5, 0.7}, opts);
  EXPECT_LT(r.best_fitness, 1e-10);
  EXPECT_EQ(r.stop, CmaesStop::kTolFun);
}

TEST(Cmaes, SolvesRosenbrock2d) {
  CmaesOptions opts;
  opts.max_iterations = 600;
  opts.lambda = 16;
  opts.tol_fun = 1e-10;
  const CmaesResult r = cmaes_minimize(rosenbrock, Vector{-1.0, 1.0}, opts);
  EXPECT_LT(r.best_fitness, 1e-8);
  EXPECT_NEAR(r.best_x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.best_x[1], 1.0, 1e-3);
}

TEST(Cmaes, HandlesIllConditionedEllipsoid) {
  CmaesOptions opts;
  opts.max_iterations = 800;
  opts.tol_fun = 1e-10;
  const CmaesResult r =
      cmaes_minimize(ellipsoid, Vector{1.0, 1.0, 1.0, 1.0}, opts);
  EXPECT_LT(r.best_fitness, 1e-8);
}

TEST(Cmaes, SeparableVariantSolvesSphere) {
  CmaesOptions opts;
  opts.max_iterations = 400;
  opts.diagonal_only = true;
  opts.tol_fun = 1e-10;
  Vector x0(20, 1.0);
  const CmaesResult r = cmaes_minimize(sphere, x0, opts);
  EXPECT_LT(r.best_fitness, 1e-8);
}

TEST(Cmaes, FitnessHistoryMostlyImproves) {
  CmaesOptions opts;
  opts.max_iterations = 60;
  const CmaesResult r = cmaes_minimize(sphere, Vector{3.0, 3.0}, opts);
  ASSERT_GE(r.fitness_history.size(), 10u);
  EXPECT_LT(r.fitness_history.back(), r.fitness_history.front());
}

TEST(Cmaes, CallbackSeesEveryIteration) {
  CmaesOptions opts;
  opts.max_iterations = 25;
  int calls = 0;
  int last_iter = -1;
  cmaes_minimize(
      sphere, Vector{1.0, 1.0}, opts,
      [&](const CmaesIteration& info) {
        EXPECT_EQ(info.iteration, last_iter + 1);
        last_iter = info.iteration;
        EXPECT_GT(info.sigma, 0.0);
        EXPECT_EQ(info.best_x.size(), 2u);
        ++calls;
      });
  EXPECT_EQ(calls, 25);
}

TEST(Cmaes, DeterministicForFixedSeed) {
  CmaesOptions opts;
  opts.max_iterations = 30;
  opts.seed = 42;
  const CmaesResult a = cmaes_minimize(sphere, Vector{1.0, -2.0}, opts);
  const CmaesResult b = cmaes_minimize(sphere, Vector{1.0, -2.0}, opts);
  EXPECT_EQ(a.best_fitness, b.best_fitness);
  EXPECT_EQ(a.best_x.raw(), b.best_x.raw());
}

TEST(Cmaes, RejectsEmptyStart) {
  EXPECT_THROW(cmaes_minimize(sphere, Vector{}, {}), std::invalid_argument);
}

TEST(Cmaes, ShiftedOptimumFound) {
  const auto shifted = [](const Vector& x) {
    const double a = x[0] - 3.0, b = x[1] + 2.0;
    return a * a + 2.0 * b * b;
  };
  CmaesOptions opts;
  opts.max_iterations = 300;
  opts.sigma0 = 1.0;
  opts.tol_fun = 1e-12;
  const CmaesResult r = cmaes_minimize(shifted, Vector{0.0, 0.0}, opts);
  EXPECT_NEAR(r.best_x[0], 3.0, 1e-4);
  EXPECT_NEAR(r.best_x[1], -2.0, 1e-4);
}

// Property sweep: sphere in several dimensions converges.
class CmaesDims : public ::testing::TestWithParam<int> {};

TEST_P(CmaesDims, SphereConverges) {
  const int n = GetParam();
  CmaesOptions opts;
  opts.max_iterations = 150 + 50 * n;
  opts.tol_fun = 1e-9;
  Vector x0(static_cast<std::size_t>(n), 1.0);
  const CmaesResult r = cmaes_minimize(sphere, x0, opts);
  EXPECT_LT(r.best_fitness, 1e-7) << "dim " << n;
}

INSTANTIATE_TEST_SUITE_P(Dims, CmaesDims, ::testing::Values(2, 4, 8, 12));

}  // namespace
}  // namespace bcert::cmaes
