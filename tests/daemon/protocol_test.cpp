// Protocol-layer tests: strict scenario-spec decoding (the daemon must
// reject rather than guess — a typo'd key could silently verify the
// wrong scenario) and the canonical verdict line (the restart and
// differential checks compare these strings byte-for-byte, so the
// format itself is contract).
#include <string>

#include <gtest/gtest.h>

#include "src/core/verify_types.h"
#include "src/daemon/json.h"
#include "src/daemon/protocol.h"

namespace bcert::daemon {
namespace {

JsonValue parse(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(JsonValue::parse(text, v, &error)) << error;
  return v;
}

bool spec_ok(const std::string& json, ScenarioSpec* out = nullptr) {
  ScenarioSpec spec;
  std::string error;
  const bool ok = parse_scenario_spec(parse(json), spec, &error);
  if (out != nullptr) *out = spec;
  return ok;
}

TEST(Protocol, MinimalSpecUsesDefaults) {
  ScenarioSpec spec;
  ASSERT_TRUE(spec_ok("{}", &spec));
  EXPECT_EQ(spec.seed, 1u);
  EXPECT_EQ(spec.index, 0u);
  EXPECT_TRUE(spec.families.empty());
  EXPECT_EQ(spec.name(), "zoo-s1-i0");
}

TEST(Protocol, FullSpecRoundTrips) {
  ScenarioSpec spec;
  ASSERT_TRUE(spec_ok(
      R"({"seed":7,"index":3,"families":["acc"],"param_jitter":0.5,)"
      R"("polynomial_degree":4,"jitter_templates":true})",
      &spec));
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.index, 3u);
  ASSERT_EQ(spec.families.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.param_jitter, 0.5);
  EXPECT_EQ(spec.polynomial_degree, 4);
  EXPECT_TRUE(spec.jitter_templates);
  EXPECT_EQ(spec.name(), "zoo-s7-i3");

  // The selected generator config must pin the prefix-stable contract:
  // count = index + 1 so generate_one(index) exists.
  const scenario::GeneratorConfig config = spec.generator_config();
  EXPECT_EQ(config.seed, 7u);
  EXPECT_EQ(config.count, 4u);
}

TEST(Protocol, RejectsUnknownKeysAndBadValues) {
  EXPECT_FALSE(spec_ok(R"({"sede":7})"));           // typo'd key
  EXPECT_FALSE(spec_ok(R"({"seed":-1})"));          // negative
  EXPECT_FALSE(spec_ok(R"({"seed":1.5})"));         // non-integer
  EXPECT_FALSE(spec_ok(R"({"index":2000000})"));    // over the cap
  EXPECT_FALSE(spec_ok(R"({"families":[]})"));      // empty list
  EXPECT_FALSE(spec_ok(R"({"families":["warp"]})"));  // unknown family
  EXPECT_FALSE(spec_ok(R"({"param_jitter":1.5})"));   // out of [0,1]
  EXPECT_FALSE(spec_ok(R"({"polynomial_degree":0})"));
  EXPECT_FALSE(spec_ok(R"({"polynomial_degree":7})"));
}

TEST(Protocol, VerdictLineIsDeterministicAndTimingFree) {
  core::VerifyResult result;
  result.status = core::VerifyStatus::kSolverBudget;
  result.level = 1.0 / 3.0;
  result.lp_margin = 2.0 / 7.0;
  const std::string line = verdict_line("zoo-s1-i0", result);

  EXPECT_NE(line.find("zoo-s1-i0 status="), std::string::npos) << line;
  EXPECT_NE(line.find("template="), std::string::npos) << line;
  // Full %.17g precision: equality of lines ⇔ bit-equality of values.
  EXPECT_NE(line.find("level=0.33333333333333331"), std::string::npos)
      << line;
  EXPECT_NE(line.find("lp_margin=0.2857142857142857"), std::string::npos)
      << line;
  // No generator set: guarded empty coefficient list, no throw.
  EXPECT_NE(line.find("coeffs=[]"), std::string::npos) << line;
  // Nothing timing-dependent: two calls, one string.
  EXPECT_EQ(line, verdict_line("zoo-s1-i0", result));
}

}  // namespace
}  // namespace bcert::daemon
