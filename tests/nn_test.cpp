// Tests for the feedforward NN: evaluation, parameter round-trips,
// symbolic export consistency, serialization, and ELM distillation.
#include <cmath>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "src/expr/eval.h"
#include "src/nn/elm.h"
#include "src/nn/network.h"

namespace bcert::nn {
namespace {

using linalg::Vector;

TEST(Activation, NamesRoundTrip) {
  for (Activation a : {Activation::kTanh, Activation::kSigmoid,
                       Activation::kRelu, Activation::kLinear}) {
    EXPECT_EQ(activation_from_name(activation_name(a)), a);
  }
  EXPECT_EQ(activation_from_name("tansig"), Activation::kTanh);  // MATLAB
  EXPECT_THROW(activation_from_name("swish"), std::invalid_argument);
}

TEST(Activation, ScalarValues) {
  EXPECT_DOUBLE_EQ(apply(Activation::kTanh, 0.0), 0.0);
  EXPECT_NEAR(apply(Activation::kSigmoid, 0.0), 0.5, 1e-15);
  EXPECT_DOUBLE_EQ(apply(Activation::kRelu, -3.0), 0.0);
  EXPECT_DOUBLE_EQ(apply(Activation::kRelu, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(apply(Activation::kLinear, -1.5), -1.5);
}

TEST(Network, ShapeAndParamCount) {
  // Paper §4.2: (2 → Nh → 1) all-tansig has 4·Nh + 1 parameters.
  for (std::size_t nh : {10u, 20u, 100u}) {
    const FeedforwardNet net = FeedforwardNet::single_hidden(2, nh, 1);
    EXPECT_EQ(net.num_inputs(), 2u);
    EXPECT_EQ(net.num_outputs(), 1u);
    EXPECT_EQ(net.num_params(), 4 * nh + 1);
  }
}

TEST(Network, ForwardKnownWeights) {
  // Hand-computed 2-2-1 network.
  FeedforwardNet net = FeedforwardNet::single_hidden(2, 2, 1);
  net.layer(0).weights = linalg::Matrix{{1.0, 0.0}, {0.0, 1.0}};
  net.layer(0).bias = Vector{0.0, 0.0};
  net.layer(1).weights = linalg::Matrix{{0.5, -0.5}};
  net.layer(1).bias = Vector{0.1};
  const double out = net.forward(Vector{0.3, -0.2})[0];
  const double expected =
      std::tanh(0.5 * std::tanh(0.3) - 0.5 * std::tanh(-0.2) + 0.1);
  EXPECT_NEAR(out, expected, 1e-15);
}

TEST(Network, TanhOutputIsBounded) {
  std::mt19937 rng(3);
  FeedforwardNet net = FeedforwardNet::single_hidden(2, 16, 1);
  net.randomize(rng, 3.0);
  std::uniform_real_distribution<double> d(-10.0, 10.0);
  for (int i = 0; i < 200; ++i) {
    const double u = net.forward(Vector{d(rng), d(rng)})[0];
    EXPECT_GT(u, -1.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Network, ParameterRoundTrip) {
  std::mt19937 rng(5);
  FeedforwardNet net = FeedforwardNet::single_hidden(3, 7, 2);
  net.randomize(rng);
  const Vector p = net.parameters();
  EXPECT_EQ(p.size(), net.num_params());
  FeedforwardNet other = FeedforwardNet::single_hidden(3, 7, 2);
  other.set_parameters(p);
  const Vector x{0.1, -0.4, 0.9};
  EXPECT_EQ(net.forward(x).raw(), other.forward(x).raw());
}

TEST(Network, SetParametersRejectsWrongSize) {
  FeedforwardNet net = FeedforwardNet::single_hidden(2, 4, 1);
  EXPECT_THROW(net.set_parameters(Vector{1.0, 2.0}), std::invalid_argument);
}

TEST(Network, SymbolicExportMatchesNumeric) {
  std::mt19937 rng(11);
  FeedforwardNet net = FeedforwardNet::single_hidden(2, 12, 1);
  net.randomize(rng, 1.5);

  expr::ExprPool pool;
  const auto outs = net.to_expr(pool, {pool.var(0), pool.var(1)});
  ASSERT_EQ(outs.size(), 1u);
  expr::Evaluator ev(pool, outs);

  std::uniform_real_distribution<double> d(-3.0, 3.0);
  for (int i = 0; i < 100; ++i) {
    const Vector x{d(rng), d(rng)};
    EXPECT_NEAR(ev.eval(x)[0], net.forward(x)[0], 1e-12);
  }
}

TEST(Network, SymbolicIntervalEnclosesOutputs) {
  std::mt19937 rng(13);
  FeedforwardNet net = FeedforwardNet::single_hidden(2, 8, 1);
  net.randomize(rng, 2.0);
  expr::ExprPool pool;
  expr::Evaluator ev(pool, net.to_expr(pool, {pool.var(0), pool.var(1)}));
  const auto box = interval::Box::from_bounds({{-1.0, 2.0}, {0.5, 1.5}});
  const interval::Interval img = ev.eval(box)[0];
  std::uniform_real_distribution<double> dx(-1.0, 2.0), dy(0.5, 1.5);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(img.contains(net.forward(Vector{dx(rng), dy(rng)})[0]));
  }
}

TEST(Network, MultiLayerDeepShape) {
  const FeedforwardNet net({2, 8, 6, 3},
                           {Activation::kTanh, Activation::kSigmoid,
                            Activation::kLinear});
  EXPECT_EQ(net.num_layers(), 3u);
  EXPECT_EQ(net.num_outputs(), 3u);
  EXPECT_EQ(net.num_params(), (8 * 2 + 8) + (6 * 8 + 6) + (3 * 6 + 3));
}

TEST(Network, SaveLoadRoundTrip) {
  std::mt19937 rng(17);
  FeedforwardNet net = FeedforwardNet::single_hidden(2, 5, 1);
  net.randomize(rng);
  std::stringstream ss;
  net.save(ss);
  const FeedforwardNet loaded = FeedforwardNet::load(ss);
  const Vector x{0.25, -0.75};
  EXPECT_DOUBLE_EQ(loaded.forward(x)[0], net.forward(x)[0]);
}

TEST(Network, LoadRejectsGarbage) {
  std::stringstream ss("not-a-network 7");
  EXPECT_THROW(FeedforwardNet::load(ss), std::runtime_error);
}

TEST(Elm, FitsSmoothTeacherAccurately) {
  const TeacherFn teacher = [](const Vector& x) {
    return Vector{std::tanh(0.25 * x[0] + 2.0 * x[1])};
  };
  ElmOptions opts;
  opts.hidden = 60;
  opts.samples = 500;
  const FeedforwardNet student = elm_fit(
      teacher, 2, 1, Vector{-6.0, -1.7}, Vector{6.0, 1.7}, opts);
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> dd(-6.0, 6.0), dt(-1.7, 1.7);
  double max_err = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const Vector x{dd(rng), dt(rng)};
    max_err = std::max(
        max_err, std::fabs(student.forward(x)[0] - teacher(x)[0]));
  }
  EXPECT_LT(max_err, 0.05);
}

TEST(Elm, RejectsUnderdeterminedFit) {
  const TeacherFn teacher = [](const Vector& x) { return Vector{x[0]}; };
  ElmOptions opts;
  opts.hidden = 100;
  opts.samples = 50;  // < hidden + 1
  EXPECT_THROW(
      elm_fit(teacher, 1, 1, Vector{-1.0}, Vector{1.0}, opts),
      std::invalid_argument);
}

// Property: ELM students of growing width keep approximating the teacher.
class ElmWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ElmWidths, ApproximationHolds) {
  const std::size_t width = GetParam();
  const TeacherFn teacher = [](const Vector& x) {
    return Vector{std::tanh(0.25 * x[0] + 2.0 * x[1])};
  };
  ElmOptions opts;
  opts.hidden = width;
  opts.samples = std::max<std::size_t>(4 * width, 400);
  const FeedforwardNet student = elm_fit(
      teacher, 2, 1, Vector{-6.0, -1.7}, Vector{6.0, 1.7}, opts);
  EXPECT_EQ(student.num_params(), 4 * width + 1);
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> dd(-5.0, 5.0), dt(-1.5, 1.5);
  double mse = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const Vector x{dd(rng), dt(rng)};
    const double e = student.forward(x)[0] - teacher(x)[0];
    mse += e * e;
  }
  EXPECT_LT(mse / n, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Widths, ElmWidths,
                         ::testing::Values(20, 50, 100, 200));

}  // namespace
}  // namespace bcert::nn
