#pragma once
/// \file verifier.h
/// \brief End-to-end barrier-certificate safety verification — the
/// procedure of Figure 1 in the paper.
///
/// Pipeline (all steps instrumented with the Table-1 timing columns):
///   1. Seed: simulate the closed loop from random initial states in the
///      domain; collect (x, f(x)) samples.
///   2. Solve the margin-maximization LP for a quadratic candidate W.
///   3. SMT check (5): ∃x ∈ D \ X0 with ∇W·f(x) ≥ −γ ?
///      SAT → simulate from the witness, add samples, goto 2.
///      UNSAT → W is a valid generator function.
///   4. Level set: pick ℓ with X0 ⊂ {W ≤ ℓ} and {W ≤ ℓ} ∩ U = ∅ using
///      the analytic ellipsoid window + binary search; each candidate ℓ
///      confirmed by SMT checks (6) and (7).
///   5. UNSAT on (5), (6), (7) ⇒ B(x) = W(x) − ℓ is a strict barrier
///      certificate: the system is safe.

#include <optional>
#include <string>
#include <vector>

#include "src/core/lp_synthesis.h"
#include "src/core/quadratic_form.h"
#include "src/core/region.h"
#include "src/expr/expr.h"
#include "src/ode/integrator.h"
#include "src/smt/icp_solver.h"

namespace bcert::core {

/// The verification problem: a closed-loop system given both numerically
/// (for simulation) and symbolically (for the SMT queries), with the
/// paper's region structure X0 / U = complement(safe_rect) /
/// D = safe_rect \ X0.
struct BarrierProblem {
  ode::VectorField sim_field;            ///< numeric ẋ = f(x)
  std::vector<expr::ExprId> sym_field;   ///< symbolic f, in `pool`
  expr::ExprPool* pool = nullptr;        ///< shared expression pool
  Rect initial_set;                      ///< X0
  Rect safe_rect;                        ///< U is its complement

  /// Optional allocation-free simulation field. Each factory invocation
  /// must return an *independent* field instance (own scratch buffers):
  /// the falsifier and the verifier call it once per thread/rollout to
  /// simulate without touching the allocator. When unset, sim_field is
  /// wrapped (correct, but slower).
  std::function<ode::VectorFieldInPlace()> sim_field_factory;

  /// The fastest simulation field available: sim_field_factory() when
  /// set, otherwise a wrapper around sim_field. The returned field owns
  /// its scratch and must not be shared across threads.
  ode::VectorFieldInPlace make_fast_field() const;

  /// Which dimensions' bounds constitute the unsafe set. Empty means
  /// "all" (the paper's case study). For augmented states — e.g. the
  /// hidden state of a recurrent controller — mark controller dimensions
  /// false: their safe_rect bounds are then treated as an *invariant
  /// domain* instead, and the verifier proves the flow points inward on
  /// those faces (so trajectories provably never leave the region where
  /// the decrease condition was checked).
  std::vector<bool> unsafe_dims;

  /// True when dimension \p i participates in the unsafe set.
  bool dim_unsafe(std::size_t i) const {
    return unsafe_dims.empty() || unsafe_dims[i];
  }
  /// True when some dimension is domain-only (needs invariance proof).
  bool has_invariant_dims() const;

  std::size_t dims() const { return initial_set.dims(); }
  void validate() const;
};

/// Tuning for the whole procedure.
struct VerifierOptions {
  double gamma = 1e-6;            ///< slack of condition (5), as the paper
  int seed_traces = 10;           ///< initial random simulations
  double trace_duration = 15.0;
  double trace_dt = 0.01;
  std::size_t samples_per_trace = 15;
  /// Positivity-only samples drawn uniformly from the safe rectangle.
  /// Trajectory samples concentrate near the closed loop's attracting
  /// manifold; in augmented state spaces (stateful controllers) that
  /// leaves W unconstrained off-manifold and the LP can return an
  /// indefinite form. Uniform positivity samples restore W > 0 on the
  /// whole domain (they add no decrease rows).
  int positivity_samples = 100;
  int max_candidate_iterations = 20;  ///< LP ↔ SMT(5) refinement loop
  int max_level_iterations = 32;      ///< binary search on ℓ
  double level_margin = 1e-3;         ///< relative shrink of the ℓ window
  unsigned seed = 1;                  ///< RNG seed for initial states
  smt::IcpConfig icp;                 ///< δ-SAT solver settings
  SynthesisOptions synthesis;         ///< LP settings

  /// δ-refinement: a δ-SAT witness of (5) whose *numeric* Lie derivative
  /// is below −γ is spurious (an artifact of interval slack at the
  /// current δ). When enabled, the verifier re-runs the query with a
  /// tighter δ instead of feeding the spurious point back into the LP —
  /// the same workflow as re-invoking dReal with a smaller δ.
  bool adaptive_delta = true;
  double delta_shrink = 0.25;   ///< δ multiplier per refinement
  double min_delta = 1e-7;      ///< refinement floor
};

/// Outcome classes. Only kSafe carries a certificate; the others mirror
/// the "terminates with no conclusion" exits of Figure 1.
enum class VerifyStatus : std::uint8_t {
  kSafe,
  kLpInfeasible,             ///< no candidate with positive margin
  kMaxCandidateIterations,   ///< CEX loop exhausted
  kLevelSetFailed,           ///< no ℓ window or binary search exhausted
  kSolverBudget,             ///< an SMT query returned UNKNOWN
  kDomainNotInvariant,       ///< flow exits a domain-only face
};

const char* verify_status_name(VerifyStatus s);

/// Timing columns of Table 1.
struct VerifyTimings {
  int candidate_iterations = 0;  ///< "Avg Num Iterations" contributor
  int lp_solves = 0;
  int smt5_queries = 0;
  double lp_time_s = 0.0;        ///< total LP time
  double smt5_time_s = 0.0;      ///< total SMT-(5) time
  double simulation_time_s = 0.0;
  double generator_time_s = 0.0; ///< total of the candidate loop
  double level_set_time_s = 0.0; ///< ℓ window + SMT (6)/(7)
  double total_time_s = 0.0;

  double avg_lp_time_s() const {
    return lp_solves ? lp_time_s / lp_solves : 0.0;
  }
  double avg_smt5_time_s() const {
    return smt5_queries ? smt5_time_s / smt5_queries : 0.0;
  }
  /// Table 1 "Time Spent in Other Steps".
  double other_time_s() const {
    return total_time_s - generator_time_s - level_set_time_s;
  }
};

/// Verification report.
struct VerifyResult {
  VerifyStatus status = VerifyStatus::kMaxCandidateIterations;
  std::optional<QuadraticForm> generator;  ///< final W candidate
  double level = 0.0;                      ///< ℓ (when kSafe)
  double lp_margin = 0.0;                  ///< margin of the final LP
  VerifyTimings timings;
  std::vector<linalg::Vector> counterexamples;  ///< CEX states from (5)

  bool safe() const { return status == VerifyStatus::kSafe; }
};

/// Orchestrates the Figure-1 procedure. The sub-steps are public so
/// tests, benches and ablations can drive them independently.
class BarrierVerifier {
 public:
  BarrierVerifier(BarrierProblem problem, VerifierOptions options);

  /// Runs the full pipeline.
  VerifyResult verify();

  // --- exposed sub-steps -------------------------------------------------

  /// Simulates from \p x0 until the horizon or domain exit and returns
  /// in-domain LP samples.
  std::vector<FieldSample> simulate_samples(const linalg::Vector& x0) const;

  /// Random initial states across the safe rectangle.
  std::vector<linalg::Vector> random_initial_states(int count,
                                                    unsigned seed) const;

  /// SMT condition (5): ∃x ∈ D\X0 : ∇W·f(x) ≥ −γ. UNSAT ⇒ valid generator.
  /// \p delta overrides the configured ICP precision when positive.
  smt::IcpResult check_decrease(const QuadraticForm& w,
                                double delta = 0.0) const;

  /// Numeric ∇W·f(x) at a point (used to classify δ-SAT witnesses).
  double numeric_lie(const QuadraticForm& w, const linalg::Vector& x) const;

  /// SMT condition (6): ∃x ∈ X0 : W(x) > ℓ. UNSAT ⇒ X0 ⊂ L.
  smt::IcpResult check_initial_contained(const QuadraticForm& w,
                                         double level) const;

  /// SMT condition (7): ∃x : W(x) ≤ ℓ ∧ x ∈ U. UNSAT ⇒ L ∩ U = ∅.
  /// Only halfspaces of unsafe dimensions participate.
  smt::IcpResult check_unsafe_disjoint(const QuadraticForm& w,
                                       double level) const;

  /// For every domain-only dimension, proves the vector field points
  /// inward on both faces of the safe rectangle (∃x on face with outward
  /// flow must be UNSAT). Returns kSat-style result on the first
  /// violation; UNSAT result when all faces are invariant.
  smt::IcpResult check_domain_invariance() const;

  /// Analytic ℓ window [ℓ_min, ℓ_max]; nullopt when none exists.
  std::optional<std::pair<double, double>> level_window(
      const QuadraticForm& w) const;

  /// Independent certificate checking: re-proves conditions (5), (6) and
  /// (7) for a *given* candidate pair (W, ℓ) without any synthesis.
  /// Returns kSafe only when all three queries are UNSAT — use this to
  /// audit a stored certificate against the deployed model.
  VerifyStatus check_certificate(const QuadraticForm& w, double level) const;

  /// Writes the three SMT queries for the pair (W, ℓ) as SMT-LIB2
  /// benchmarks cross-checkable with dReal (the solver the paper used):
  /// `<prefix>_decrease.smt2`, `<prefix>_initial.smt2`,
  /// `<prefix>_unsafe.smt2`. All three must be unsat for B = W − ℓ to be
  /// a barrier certificate.
  void export_queries_smtlib(const QuadraticForm& w, double level,
                             const std::string& prefix) const;

  const BarrierProblem& problem() const { return problem_; }
  const VerifierOptions& options() const { return options_; }

 private:
  BarrierProblem problem_;
  VerifierOptions options_;
};

}  // namespace bcert::core
