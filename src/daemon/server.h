#pragma once
/// \file server.h
/// \brief `bcertd` — the verification-as-a-service daemon.
///
/// One `Server` owns one `Engine`, one long-lived `ExprPool` and one
/// Unix-domain listening socket, and runs until drained. Two threads:
///
///  * the **I/O thread** accepts connections and reads newline-delimited
///    JSON requests into an inbox (`poll()` over the listen fd, every
///    client fd and a self-pipe used for shutdown wakeups);
///  * the **scheduler thread** (the thread calling `run()`) drains the
///    inbox, decodes requests, materializes scenarios, dispatches jobs
///    onto the Engine pool, delivers progress/result events, takes
///    periodic warm-state snapshots and performs the drain.
///
/// Writes to a client go directly from whichever thread produced the
/// event — the scheduler for responses/results, an Engine pool worker
/// for progress callbacks — serialized per connection by a write mutex,
/// with `MSG_NOSIGNAL` and a bounded send timeout so one stalled reader
/// can never wedge the daemon (it is disconnected instead; its finished
/// results stay in the completed map and remain fetchable via `status`
/// after reconnecting — results are always deliverable).
///
/// ## Scheduling
///
/// Scenario materialization interns expressions into the daemon's
/// `ExprPool`, and running pipelines intern candidate coefficients into
/// the same pool — and `ExprPool` is not thread-safe. The scheduler
/// therefore materializes pending specs only at **quiesce** (no job in
/// flight), in batches: each batch is ordered by (priority descending,
/// round-robin across client connections, submission order) — the
/// fair-share rule that stops one chatty client from starving another —
/// and then dispatched onto the Engine pool as a wave. Requests that
/// arrive while a wave runs queue up for the next quiesce.
///
/// ## Warm-state persistence
///
/// With `state_dir` set, the daemon loads `<state_dir>/bcertd.snapshot`
/// at start (a corrupt, truncated or version-mismatched snapshot loads
/// as empty with a warning — never a crash), saves it every
/// `snapshot_period_s` seconds (0 = drain-only) and again as the last
/// act of a drain. Saves go through `smt::save_snapshot` (atomic
/// temp+rename; an armed `cache_serialize` fault or I/O error skips the
/// snapshot with a warning and bumps a counter — the daemon never dies
/// for its own persistence).
///
/// ## Fault posture
///
/// `socket_io` is a trip-style fault point hit once per received
/// request line and once per written line: a firing rule drops that
/// connection, exactly like a client vanishing mid-conversation. Under
/// a fault sweep the daemon sheds connections, never state — clients
/// reconnect and recover results through `status`.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/core/runtime_config.h"
#include "src/daemon/json.h"
#include "src/daemon/log.h"
#include "src/daemon/protocol.h"
#include "src/expr/expr.h"

namespace bcert::daemon {

/// One accepted client connection. The I/O thread owns `read_buffer`
/// and the fd's lifecycle; any thread may write through `send` (which
/// serializes on `write_mutex`). A failed or faulted write marks the
/// connection closed and shuts the socket down — the I/O thread then
/// observes the hangup and reclaims the fd, so fds are only ever
/// *closed* on the I/O thread.
struct Connection {
  std::uint64_t id = 0;
  int fd = -1;
  std::atomic<bool> closed{false};
  std::mutex write_mutex;
  std::string read_buffer;
};

/// Everything `bcertd` needs to run. `from_runtime_config()` fills the
/// knobs from the `BCERT_*` environment (RuntimeConfig); tests construct
/// options directly and never touch process-global state.
struct ServerOptions {
  std::string socket_path = "/tmp/bcertd.sock";
  /// Snapshot directory; empty disables persistence.
  std::string state_dir;
  /// Periodic snapshot cadence in seconds; 0 = drain-only.
  double snapshot_period_s = 300.0;
  core::ConfigLogLevel log_level = core::ConfigLogLevel::kInfo;
  core::EngineOptions engine;
  /// External stop request (the SIGTERM handler's atomic): polled every
  /// scheduler tick, a set flag triggers the same graceful drain as the
  /// `drain` command.
  std::atomic<bool>* stop_flag = nullptr;
  /// Log sink override for tests; null = stderr.
  std::ostream* log_stream = nullptr;

  static ServerOptions from_runtime_config(const core::RuntimeConfig& config);
};

/// Aggregate daemon counters, exposed on the `stats` endpoint and (for
/// in-process tests) via `Server::stats_snapshot()`.
struct ServerStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;   ///< result delivered (any status)
  std::uint64_t jobs_cancelled = 0;   ///< of completed: status kCancelled
  std::uint64_t jobs_failed = 0;      ///< of completed: non-ok error
  std::uint64_t queue_depth = 0;      ///< pending (not yet dispatched)
  std::uint64_t running = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t connections_opened = 0;
  std::uint64_t connections_dropped = 0;  ///< faulted / failed writes
  std::uint64_t snapshots_saved = 0;
  std::uint64_t snapshot_failures = 0;
  bool snapshot_loaded = false;       ///< start-up restore succeeded
  double queue_wait_total_s = 0.0;    ///< submit → dispatch, completed jobs
  double run_total_s = 0.0;           ///< dispatch → finish, completed jobs
  core::VerifyTimings phase_totals;   ///< per-phase latency aggregate
  core::DegradationReport degradation;  ///< aggregate over completed jobs
};

/// The daemon. Construct, `start()`, then `run()` (blocking) on the
/// scheduler thread. `run()` returns when a drain completes — via the
/// `drain` command or the external stop flag.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket, restores the warm-state snapshot (when
  /// configured) and starts the I/O thread. False + \p error on failure
  /// (socket path too long, bind refused, ...). A stale socket file
  /// from a dead daemon is unlinked and rebound.
  bool start(std::string* error);

  /// The scheduler loop. Blocks until drained; returns the process exit
  /// code (0 = drained cleanly). Requires a successful start().
  int run();

  /// Point-in-time copy of the daemon counters (thread-safe).
  ServerStats stats_snapshot() const;

  const ServerOptions& options() const { return options_; }

 private:
  struct Job;
  struct InboundLine {
    std::shared_ptr<Connection> conn;
    std::string line;
  };

  // --- I/O thread -----------------------------------------------------------
  void io_loop();
  void accept_client();
  /// Reads available bytes from \p conn, enqueues complete lines; false
  /// when the connection is finished (EOF, error, fault, oversized
  /// line) and should be reclaimed.
  bool read_from(const std::shared_ptr<Connection>& conn);
  void reclaim(const std::shared_ptr<Connection>& conn);

  // --- writes (any thread) --------------------------------------------------
  /// Writes one JSON line (newline appended). False when the connection
  /// is/became closed; a failed or faulted write drops the connection.
  bool send_line(const std::shared_ptr<Connection>& conn,
                 const std::string& json);

  // --- scheduler ------------------------------------------------------------
  void handle_line(const InboundLine& in);
  void handle_submit(const std::shared_ptr<Connection>& conn,
                     const JsonValue& request, const std::string& req_id);
  void handle_status(const std::shared_ptr<Connection>& conn,
                     const JsonValue& request, const std::string& req_id);
  void handle_cancel(const std::shared_ptr<Connection>& conn,
                     const JsonValue& request, const std::string& req_id);
  void handle_stats(const std::shared_ptr<Connection>& conn,
                    const std::string& req_id);
  void send_error(const std::shared_ptr<Connection>& conn,
                  const std::string& req_id, const std::string& message);

  /// Materializes + dispatches every pending job, fair-share ordered.
  /// Only called at quiesce (no running jobs) — see the file comment.
  void dispatch_wave();
  /// Completes jobs whose handles are ready; emits result events.
  void collect_finished();
  void finish_job(Job& job, core::VerifyResult result);
  /// Saves the warm-state snapshot; returns success. Never throws.
  bool save_snapshot_now(const char* reason);
  void maybe_periodic_snapshot();
  std::string snapshot_path() const;

  std::string stats_json(const std::string& req_id) const;

  ServerOptions options_;
  Logger log_;
  expr::ExprPool pool_;
  std::unique_ptr<core::Engine> engine_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread io_thread_;
  std::atomic<bool> io_stop_{false};
  bool started_ = false;

  mutable std::mutex conn_mutex_;
  std::map<std::uint64_t, std::shared_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = 1;

  std::mutex inbox_mutex_;
  std::condition_variable inbox_cv_;
  std::deque<InboundLine> inbox_;

  // Scheduler-thread state (no lock: only run() touches it).
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::vector<std::uint64_t> pending_;
  std::vector<std::uint64_t> running_;
  std::uint64_t next_job_id_ = 1;
  bool draining_ = false;
  std::chrono::steady_clock::time_point started_at_;
  std::chrono::steady_clock::time_point last_snapshot_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace bcert::daemon
