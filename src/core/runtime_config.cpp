#include "src/core/runtime_config.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_set>

#include "src/core/fault.h"

extern "C" char** environ;

namespace bcert::core {

namespace {

/// The single warning channel: collected when the caller provided a
/// sink, otherwise printed to stderr with a uniform prefix. The stderr
/// path dedupes per message text (which embeds the variable name and
/// offending value), so re-parsing the same malformed environment —
/// every from_env() call in a long-lived process — emits one line, not
/// one per parse.
struct WarningSink {
  std::vector<std::string>* out;

  void warn(std::string message) const {
    if (out != nullptr) {
      out->push_back(std::move(message));
      return;
    }
    static std::mutex mu;
    static std::unordered_set<std::string>* seen =
        new std::unordered_set<std::string>;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!seen->insert(message).second) return;
    }
    std::fprintf(stderr, "bcert: config: %s\n", message.c_str());
  }
};

/// `BCERT_MEM_QUOTA` parse: non-negative decimal bytes with an optional
/// K/M/G (case-insensitive, optionally B-suffixed) binary multiplier.
bool parse_mem_quota(const char* text, std::uint64_t& value) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text) return false;
  std::uint64_t mult = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': mult = 1ull << 10; break;
      case 'm': case 'M': mult = 1ull << 20; break;
      case 'g': case 'G': mult = 1ull << 30; break;
      default: return false;
    }
    ++end;
    if (*end == 'b' || *end == 'B') ++end;
    if (*end != '\0') return false;
  }
  if (v > UINT64_MAX / mult) return false;
  value = static_cast<std::uint64_t>(v) * mult;
  return true;
}

/// Strict positive-integer parse: the whole token must be a decimal
/// integer in (0, max]. Returns false (and leaves \p value untouched)
/// on empty input, trailing junk, overflow or a non-positive value.
bool parse_positive_int(const char* text, int max, int& value) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  if (v <= 0 || v > static_cast<long>(max)) return false;
  value = static_cast<int>(v);
  return true;
}

/// Boolean-knob tokens. Anything else is malformed (the legacy contract
/// "anything else enables" survives as the fallback, but now warns).
bool parse_toggle(const char* text, ConfigToggle& value) {
  const bool off = std::strcmp(text, "0") == 0 ||
                   std::strcmp(text, "off") == 0 ||
                   std::strcmp(text, "false") == 0;
  const bool on = std::strcmp(text, "1") == 0 ||
                  std::strcmp(text, "on") == 0 ||
                  std::strcmp(text, "true") == 0;
  if (!off && !on) return false;
  value = off ? ConfigToggle::kOff : ConfigToggle::kOn;
  return true;
}

/// Strict non-negative double parse (whole token, finite, ≥ 0).
bool parse_non_negative_double(const char* text, double& value) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return false;
  if (!(v >= 0.0) || v > 1e12) return false;  // rejects NaN / negatives
  value = v;
  return true;
}

/// `BCERT_*` variables this library (src/) and its benches understand.
/// from_env() parses the first six; the rest are read by the bench
/// executables through bench::env_int and listed here only so a bench
/// run does not trip the unknown-variable warning.
constexpr const char* kKnownVars[] = {
    "BCERT_THREADS", "BCERT_ICP_BATCH", "BCERT_ICP_WARM", "BCERT_LP_WARM",
    "BCERT_HC4_MODE", "BCERT_ICP_SIMD", "BCERT_FAULT", "BCERT_MEM_QUOTA",
    "BCERT_JIT_DUMP",
    // bcertd daemon knobs (src/daemon)
    "BCERT_DAEMON_SOCKET", "BCERT_STATE_DIR", "BCERT_SNAPSHOT_S",
    "BCERT_LOG_LEVEL",
    // bench-only size knobs (see the README table)
    "BCERT_ICP_BOXES", "BCERT_ICP_WARM_ITERS", "BCERT_HC4_CONTRACTS",
    "BCERT_LP_ROWS", "BCERT_LP_ITERS", "BCERT_ROLLOUTS",
    "BCERT_RESTART_SCENARIOS",
    "BCERT_CAMPAIGN_SCENARIOS", "BCERT_SIZES", "BCERT_SEEDS", "BCERT_TRAIN",
    "BCERT_FIG4_ITERS", "BCERT_FIG4_POP", "BCERT_FIG5_TRAIN",
    "BCERT_TEMPLATE_DEG6",
    // workload-zoo knobs (examples/scenario_zoo, bench_micro zoo
    // headline, and the generated-campaign stress test)
    "BCERT_ZOO_SCENARIOS", "BCERT_ZOO_SEED", "BCERT_ZOO_QUERIES",
    "BCERT_SCENARIO_STRESS"};

void warn_unknown_vars(const WarningSink& sink) {
  if (environ == nullptr) return;
  for (char** e = environ; *e != nullptr; ++e) {
    const char* entry = *e;
    if (std::strncmp(entry, "BCERT_", 6) != 0) continue;
    const char* eq = std::strchr(entry, '=');
    const std::string name(entry, eq != nullptr
                                      ? static_cast<std::size_t>(eq - entry)
                                      : std::strlen(entry));
    bool known = false;
    for (const char* k : kKnownVars) known = known || name == k;
    if (!known) {
      sink.warn("unknown environment variable " + name + " (ignored)");
    }
  }
}

RuntimeConfig& active_instance() {
  // First use parses the environment; warnings go straight to stderr.
  // The BCERT_FAULT spec arms the process-wide registry here (and in
  // set_active) rather than in from_env, so sink-driven test parses
  // never inject faults as a side effect.
  static RuntimeConfig config = [] {
    RuntimeConfig c = RuntimeConfig::from_env();
    FaultRegistry::configure(c.fault_spec);
    return c;
  }();
  return config;
}

}  // namespace

RuntimeConfig RuntimeConfig::from_env(std::vector<std::string>* warnings) {
  const WarningSink sink{warnings};
  RuntimeConfig config;

  if (const char* v = std::getenv("BCERT_THREADS")) {
    if (!parse_positive_int(v, 1 << 20, config.threads)) {
      sink.warn(std::string("BCERT_THREADS=\"") + v +
                "\" is not a positive integer; using hardware concurrency");
    }
  }
  if (const char* v = std::getenv("BCERT_ICP_BATCH")) {
    if (!parse_positive_int(v, 1 << 20, config.icp_batch)) {
      sink.warn(std::string("BCERT_ICP_BATCH=\"") + v +
                "\" is not a positive integer; using the default batch");
    }
  }
  if (const char* v = std::getenv("BCERT_ICP_WARM")) {
    if (!parse_toggle(v, config.icp_warm)) {
      config.icp_warm = ConfigToggle::kOn;  // legacy: anything else enables
      sink.warn(std::string("BCERT_ICP_WARM=\"") + v +
                "\" (expected 0/off/false or 1/on/true); treating as on");
    }
  }
  if (const char* v = std::getenv("BCERT_LP_WARM")) {
    if (!parse_toggle(v, config.lp_warm)) {
      config.lp_warm = ConfigToggle::kOn;
      sink.warn(std::string("BCERT_LP_WARM=\"") + v +
                "\" (expected 0/off/false or 1/on/true); treating as on");
    }
  }
  if (const char* v = std::getenv("BCERT_HC4_MODE")) {
    if (std::strcmp(v, "tape") == 0) {
      config.hc4_mode = ConfigHc4Mode::kTape;
    } else if (std::strcmp(v, "tree") == 0) {
      config.hc4_mode = ConfigHc4Mode::kTree;
    } else if (std::strcmp(v, "jit") == 0) {
      config.hc4_mode = ConfigHc4Mode::kJit;
    } else {
      // A typo silently falling back would defeat the point of the flag
      // (e.g. comparing "tape vs tape" while debugging a divergence).
      sink.warn(std::string("unrecognized BCERT_HC4_MODE=\"") + v +
                "\" (expected \"jit\", \"tape\" or \"tree\"); using tape");
    }
  }
  if (const char* v = std::getenv("BCERT_JIT_DUMP")) {
    ConfigToggle t = ConfigToggle::kAuto;
    if (parse_toggle(v, t)) {
      config.jit_dump = t == ConfigToggle::kOn;
    } else {
      config.jit_dump = true;  // a set-but-odd value still means "dump"
      sink.warn(std::string("BCERT_JIT_DUMP=\"") + v +
                "\" (expected 0/off/false or 1/on/true); treating as on");
    }
  }
  if (const char* v = std::getenv("BCERT_ICP_SIMD")) {
    if (std::strcmp(v, "avx2") == 0) {
      config.icp_simd = ConfigSimd::kAvx2;
    } else if (std::strcmp(v, "sse2") == 0) {
      config.icp_simd = ConfigSimd::kSse2;
    } else if (std::strcmp(v, "scalar") == 0) {
      config.icp_simd = ConfigSimd::kScalar;
    } else {
      sink.warn(std::string("unrecognized BCERT_ICP_SIMD=\"") + v +
                "\" (expected \"avx2\", \"sse2\" or \"scalar\"); using the "
                "best available tier");
    }
  }

  if (const char* v = std::getenv("BCERT_FAULT")) {
    std::vector<std::string> errors;
    if (FaultRegistry::validate(v, &errors)) {
      config.fault_spec = v;
    } else {
      for (const std::string& e : errors) {
        sink.warn("BCERT_FAULT: " + e + "; ignoring the spec");
      }
    }
  }
  if (const char* v = std::getenv("BCERT_DAEMON_SOCKET")) {
    // sockaddr_un::sun_path is 108 bytes including the terminator.
    if (*v == '\0' || std::strlen(v) > 107) {
      sink.warn(std::string("BCERT_DAEMON_SOCKET=\"") + v +
                "\" is empty or longer than 107 bytes (sun_path limit); "
                "using " + config.daemon_socket);
    } else {
      config.daemon_socket = v;
    }
  }
  if (const char* v = std::getenv("BCERT_STATE_DIR")) {
    // Any path is accepted (the daemon reports unusable directories at
    // snapshot time); the empty string explicitly disables persistence.
    config.state_dir = v;
  }
  if (const char* v = std::getenv("BCERT_SNAPSHOT_S")) {
    if (!parse_non_negative_double(v, config.snapshot_period_s)) {
      sink.warn(std::string("BCERT_SNAPSHOT_S=\"") + v +
                "\" is not a non-negative number of seconds; using the "
                "default period");
    }
  }
  if (const char* v = std::getenv("BCERT_LOG_LEVEL")) {
    if (std::strcmp(v, "error") == 0) {
      config.log_level = ConfigLogLevel::kError;
    } else if (std::strcmp(v, "warn") == 0) {
      config.log_level = ConfigLogLevel::kWarn;
    } else if (std::strcmp(v, "info") == 0) {
      config.log_level = ConfigLogLevel::kInfo;
    } else if (std::strcmp(v, "debug") == 0) {
      config.log_level = ConfigLogLevel::kDebug;
    } else {
      sink.warn(std::string("unrecognized BCERT_LOG_LEVEL=\"") + v +
                "\" (expected \"error\", \"warn\", \"info\" or \"debug\"); "
                "using info");
    }
  }
  if (const char* v = std::getenv("BCERT_MEM_QUOTA")) {
    if (!parse_mem_quota(v, config.mem_quota_bytes)) {
      sink.warn(std::string("BCERT_MEM_QUOTA=\"") + v +
                "\" is not a byte count (optionally K/M/G-suffixed); "
                "quota disabled");
    }
  }

  warn_unknown_vars(sink);
  return config;
}

const char* log_level_name(ConfigLogLevel level) {
  switch (level) {
    case ConfigLogLevel::kError: return "error";
    case ConfigLogLevel::kWarn: return "warn";
    case ConfigLogLevel::kInfo: return "info";
    case ConfigLogLevel::kDebug: return "debug";
  }
  return "info";
}

const RuntimeConfig& RuntimeConfig::active() { return active_instance(); }

void RuntimeConfig::set_active(const RuntimeConfig& config) {
  active_instance() = config;
  FaultRegistry::configure(config.fault_spec);
}

}  // namespace bcert::core
