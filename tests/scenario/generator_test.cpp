// ScenarioGenerator determinism contract + generated-campaign stress.
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/fault.h"
#include "src/expr/eval.h"
#include "src/scenario/generator.h"
#include "src/scenario/prng.h"

namespace bcert::scenario {
namespace {

/// Deterministic in-box points for comparing two scenarios' fields.
std::vector<linalg::Vector> probe_points(const core::Scenario& s,
                                         std::size_t count) {
  const core::Rect& r = s.problem.safe_rect;
  SplitMix64 rng(0xBEEF);
  std::vector<linalg::Vector> points;
  for (std::size_t k = 0; k < count; ++k) {
    linalg::Vector x(r.dims());
    for (std::size_t i = 0; i < r.dims(); ++i) {
      x[i] = rng.uniform(r.lo[i], r.hi[i]);
    }
    points.push_back(std::move(x));
  }
  return points;
}

/// Bit-identity of two scenarios: name, regions, certificate kind, and
/// the numeric field at deterministic probe points.
void expect_identical(const core::Scenario& a, const core::Scenario& b) {
  EXPECT_EQ(a.name, b.name);
  const core::Rect &ra = a.problem.safe_rect, &rb = b.problem.safe_rect;
  ASSERT_EQ(ra.dims(), rb.dims());
  for (std::size_t i = 0; i < ra.dims(); ++i) {
    EXPECT_EQ(ra.lo[i], rb.lo[i]) << a.name << " safe lo " << i;
    EXPECT_EQ(ra.hi[i], rb.hi[i]) << a.name << " safe hi " << i;
    EXPECT_EQ(a.problem.initial_set.lo[i], b.problem.initial_set.lo[i]);
    EXPECT_EQ(a.problem.initial_set.hi[i], b.problem.initial_set.hi[i]);
  }
  ASSERT_EQ(a.certificate.has_value(), b.certificate.has_value()) << a.name;
  if (a.certificate) {
    EXPECT_EQ(a.certificate->kind, b.certificate->kind);
    EXPECT_EQ(a.certificate->max_degree, b.certificate->max_degree);
  }
  for (const linalg::Vector& x : probe_points(a, 10)) {
    const linalg::Vector da = a.problem.sim_field(x);
    const linalg::Vector db = b.problem.sim_field(x);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i], db[i]) << a.name << " field component " << i;
    }
  }
}

TEST(Generator, SameSeedIsBitIdentical) {
  GeneratorConfig config;
  config.seed = 42;
  config.count = 10;
  config.jitter_templates = true;
  expr::ExprPool pool_a, pool_b;
  auto suite_a = ScenarioGenerator(pool_a, config).generate();
  auto suite_b = ScenarioGenerator(pool_b, config).generate();
  ASSERT_EQ(suite_a.size(), 10u);
  ASSERT_EQ(suite_b.size(), 10u);
  for (std::size_t i = 0; i < suite_a.size(); ++i) {
    expect_identical(suite_a[i], suite_b[i]);
  }
}

TEST(Generator, PrefixStability) {
  // Growing the suite must re-emit the same leading scenarios: each
  // scenario's stream derives from (seed, index), never from how much
  // randomness its predecessors consumed.
  GeneratorConfig small, large;
  small.seed = large.seed = 7;
  small.count = 4;
  large.count = 10;
  expr::ExprPool pool_a, pool_b;
  auto suite_small = ScenarioGenerator(pool_a, small).generate();
  auto suite_large = ScenarioGenerator(pool_b, large).generate();
  for (std::size_t i = 0; i < suite_small.size(); ++i) {
    expect_identical(suite_small[i], suite_large[i]);
  }
}

TEST(Generator, DifferentSeedsProduceDifferentScenarios) {
  GeneratorConfig a, b;
  a.seed = 1;
  b.seed = 2;
  a.count = b.count = 2;
  expr::ExprPool pool_a, pool_b;
  const auto sa = ScenarioGenerator(pool_a, a).generate();
  const auto sb = ScenarioGenerator(pool_b, b).generate();
  // Same family rotation, different jitter: regions must differ.
  EXPECT_NE(sa[0].problem.safe_rect.hi[0], sb[0].problem.safe_rect.hi[0]);
}

TEST(Generator, RoundRobinFamiliesAndNames) {
  GeneratorConfig config;
  config.seed = 3;
  config.count = kPlantFamilyCount + 2;
  expr::ExprPool pool;
  const auto suite = ScenarioGenerator(pool, config).generate();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const PlantFamily f = config.families[i % config.families.size()];
    const std::string expected = std::string(plant_family_name(f)) + "-s3-" +
                                 std::to_string(i);
    EXPECT_EQ(suite[i].name, expected);
  }
  // Wrap-around repeats the family but not the scenario.
  EXPECT_NE(suite[0].problem.safe_rect.hi[0],
            suite[kPlantFamilyCount].problem.safe_rect.hi[0]);
}

TEST(Generator, TemplateJitterProducesMixedSuites) {
  GeneratorConfig config;
  config.seed = 11;
  config.count = 16;
  config.jitter_templates = true;
  expr::ExprPool pool;
  const auto suite = ScenarioGenerator(pool, config).generate();
  std::size_t with_override = 0;
  for (const core::Scenario& s : suite) {
    if (s.certificate) {
      ++with_override;
      EXPECT_EQ(s.certificate->kind, core::TemplateSpec::Kind::kPolynomial);
      EXPECT_EQ(s.certificate->max_degree, config.polynomial_degree);
    }
  }
  // A 16-scenario suite with a fair coin lands strictly inside (0, 16)
  // for any seed we'd keep; pinned here so the axis provably jitters.
  EXPECT_GT(with_override, 0u);
  EXPECT_LT(with_override, suite.size());
}

TEST(Generator, CertificateOverrideReachesTheEngine) {
  // A scenario whose certificate override requests a polynomial template
  // must come back verified with template_kind == kPolynomial even when
  // the campaign default is quadratic.
  GeneratorConfig config;
  config.seed = 5;
  config.count = 1;
  config.families = {PlantFamily::kAcc};
  expr::ExprPool pool;
  std::vector<core::Scenario> suite = ScenarioGenerator(pool, config).generate();
  suite[0].certificate = core::TemplateSpec::polynomial(2);
  core::Engine engine({.threads = 1});
  const core::CampaignResult result =
      engine.run_campaign(std::span<const core::Scenario>(suite),
                          zoo_job_defaults());
  ASSERT_EQ(result.scenarios.size(), 1u);
  EXPECT_EQ(result.scenarios[0].result.template_kind,
            core::TemplateSpec::Kind::kPolynomial);
}

/// Generated-campaign stress: BCERT_SCENARIO_STRESS scales the suite
/// (CI's nightly-style leg sets 200; the default keeps local ctest
/// fast). With fault injection armed the assertion weakens to "the
/// campaign completes and reports every scenario" — that run exists to
/// prove the retry/quarantine machinery holds under a generated load.
TEST(Generator, CampaignStress) {
  std::size_t count = 6;
  if (const char* v = std::getenv("BCERT_SCENARIO_STRESS")) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) count = static_cast<std::size_t>(parsed);
  }
  GeneratorConfig config;
  config.seed = 2026;
  config.count = count;
  config.jitter_templates = true;
  expr::ExprPool pool;
  const std::vector<core::Scenario> suite =
      ScenarioGenerator(pool, config).generate();
  core::Engine engine;
  const core::CampaignResult result = engine.run_campaign(
      std::span<const core::Scenario>(suite), zoo_job_defaults());
  ASSERT_EQ(result.scenarios.size(), count);
  for (const core::ScenarioOutcome& o : result.scenarios) {
    EXPECT_GE(o.attempts, 1);
  }
  if (!core::FaultRegistry::enabled()) {
    EXPECT_EQ(result.failed_count, 0);
    EXPECT_TRUE(result.quarantined.empty());
    // The generator's jitter bounds are calibrated to keep generated
    // scenarios verifiable; tolerate a small analytic-failure tail
    // (the 64-scenario headline suite verifies ~91% safe).
    EXPECT_GE(result.safe_count,
              static_cast<int>((count * 85) / 100));
  }
}

}  // namespace
}  // namespace bcert::scenario
