#include "src/smt/jit/hc4_jit.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <iostream>
#include <limits>

#include "src/core/fault.h"
#include "src/core/runtime_config.h"
#include "src/expr/eval.h"
#include "src/smt/projections.h"
#include "src/smt/tape_kernels.h"
#include "src/smt/jit/x64_asm.h"

namespace bcert::smt {

using interval::Interval;

static_assert(sizeof(Interval) == 16,
              "jit addresses register slots as [lo, hi] double pairs");

namespace {

// --- out-of-line callbacks --------------------------------------------------
// The emitted code inlines the hot shapes (kAdd/kSub/kNeg/kMul/kMulConst
// forward, kAdd and kMulConst projections, every emptiness check) and
// calls back here for the long tail, running the interpreter's own
// kernels — which is what makes the bit-identity contract cheap to keep.

const Interval kNoOperand;  // unary filler, mirrors the sweeps' static

void fwd_generic(Interval* dst, const Interval* a, const Interval* b, int op,
                 int exp) {
  *dst = expr::apply_interval_op(static_cast<expr::Op>(op), exp, *a,
                                 b != nullptr ? *b : kNoOperand);
}

int bwd_generic(const Interval* r, Interval* a, Interval* b, int op,
                int exp) {
  return detail::project_node(static_cast<expr::Op>(op), exp, *r, *a, b) ? 1
                                                                         : 0;
}

/// Constant-leg feasibility of the kMulConst projection: w ∈ r / x. The
/// two dominant shapes (sign-definite divisor, numerator spanning zero)
/// are emitted inline; this branchy extended-division membership test is
/// the residual that stays out of line.
int bwd_cqf(const Interval* r, const Interval* x, const MulConstSpec* sp) {
  return tkern::const_quotient_feasible(sp->w, *r, *x) ? 1 : 0;
}

// Direct per-op callbacks: the generic entries above re-dispatch through
// apply_interval_op / project_node's switch on every call. Both are
// header-inline, so instantiating them with a compile-time op folds the
// switch away and the emitted call lands straight in the kernel. The
// emitter resolves these at compile (= emit) time; kPow keeps the
// generic path (it needs the exponent operand).

template <expr::Op OP>
void fwd_unary(Interval* dst, const Interval* a) {
  *dst = expr::apply_interval_op(OP, 0, *a, kNoOperand);
}
template <expr::Op OP>
void fwd_binary(Interval* dst, const Interval* a, const Interval* b) {
  *dst = expr::apply_interval_op(OP, 0, *a, *b);
}
template <expr::Op OP>
int bwd_unary(const Interval* r, Interval* a) {
  return detail::project_node(OP, 0, *r, *a, nullptr) ? 1 : 0;
}
template <expr::Op OP>
int bwd_binary(const Interval* r, Interval* a, Interval* b) {
  return detail::project_node(OP, 0, *r, *a, b) ? 1 : 0;
}

using FwdUnaryFn = void (*)(Interval*, const Interval*);
using FwdBinaryFn = void (*)(Interval*, const Interval*, const Interval*);
using BwdUnaryFn = int (*)(const Interval*, Interval*);
using BwdBinaryFn = int (*)(const Interval*, Interval*, Interval*);

FwdUnaryFn fwd_unary_fn(expr::Op op) {
  using expr::Op;
  switch (op) {
    case Op::kSin: return &fwd_unary<Op::kSin>;
    case Op::kCos: return &fwd_unary<Op::kCos>;
    case Op::kTan: return &fwd_unary<Op::kTan>;
    case Op::kAtan: return &fwd_unary<Op::kAtan>;
    case Op::kExp: return &fwd_unary<Op::kExp>;
    case Op::kLog: return &fwd_unary<Op::kLog>;
    case Op::kSqrt: return &fwd_unary<Op::kSqrt>;
    case Op::kSqr: return &fwd_unary<Op::kSqr>;
    case Op::kTanh: return &fwd_unary<Op::kTanh>;
    case Op::kSigmoid: return &fwd_unary<Op::kSigmoid>;
    case Op::kRelu: return &fwd_unary<Op::kRelu>;
    case Op::kAbs: return &fwd_unary<Op::kAbs>;
    default: return nullptr;
  }
}

FwdBinaryFn fwd_binary_fn(expr::Op op) {
  using expr::Op;
  switch (op) {
    case Op::kAdd: return &fwd_binary<Op::kAdd>;  // non-SSE2 tape builds
    case Op::kDiv: return &fwd_binary<Op::kDiv>;
    case Op::kMin: return &fwd_binary<Op::kMin>;
    case Op::kMax: return &fwd_binary<Op::kMax>;
    default: return nullptr;
  }
}

BwdUnaryFn bwd_unary_fn(expr::Op op) {
  using expr::Op;
  switch (op) {
    case Op::kSin: return &bwd_unary<Op::kSin>;
    case Op::kCos: return &bwd_unary<Op::kCos>;
    case Op::kTan: return &bwd_unary<Op::kTan>;
    case Op::kAtan: return &bwd_unary<Op::kAtan>;
    case Op::kExp: return &bwd_unary<Op::kExp>;
    case Op::kLog: return &bwd_unary<Op::kLog>;
    case Op::kSqrt: return &bwd_unary<Op::kSqrt>;
    case Op::kSqr: return &bwd_unary<Op::kSqr>;
    case Op::kTanh: return &bwd_unary<Op::kTanh>;
    case Op::kSigmoid: return &bwd_unary<Op::kSigmoid>;
    case Op::kRelu: return &bwd_unary<Op::kRelu>;
    case Op::kAbs: return &bwd_unary<Op::kAbs>;
    default: return nullptr;
  }
}

BwdBinaryFn bwd_binary_fn(expr::Op op) {
  using expr::Op;
  switch (op) {
    case Op::kAdd: return &bwd_binary<Op::kAdd>;  // non-SSE2 tape builds
    case Op::kSub: return &bwd_binary<Op::kSub>;
    case Op::kMul: return &bwd_binary<Op::kMul>;
    case Op::kDiv: return &bwd_binary<Op::kDiv>;
    case Op::kMin: return &bwd_binary<Op::kMin>;
    case Op::kMax: return &bwd_binary<Op::kMax>;
    default: return nullptr;
  }
}

/// Unary ops eligible for the backward no-narrow skip: total-domain ops
/// whose projection is a conservative `a ∩= g(r)` (or a conditional
/// no-op). For these, when the requirement r still equals the node's own
/// forward value F and the operand a is untouched since the sweep,
/// every x ∈ a has op(x) ∈ F = r, so a sound projection cannot prune
/// anything and `project_node` provably returns a unchanged. Domain-
/// clipping ops (kLog, kSqrt — the projection may prune points outside
/// the op's domain even when r == F) and the piecewise hull projections
/// (kSqr, kAbs, kRelu, kPow) stay out.
bool skip_eligible_unary(expr::Op op) {
  using expr::Op;
  switch (op) {
    case Op::kSin:
    case Op::kCos:
    case Op::kTan:
    case Op::kAtan:
    case Op::kExp:
    case Op::kTanh:
    case Op::kSigmoid:
      return true;
    default:
      return false;
  }
}

// --- constant-table layout --------------------------------------------------
// 16-byte entries addressed [rbp + disp32]; the base is 64-byte aligned
// (linalg::aligned_doubles) so aligned movapd/integer-SSE memory operands
// are legal on every entry.

constexpr std::int32_t kOffEmpty = 0;      ///< {+inf, -inf} canonical empty
constexpr std::int32_t kOffOnesQw = 16;    ///< int64 {1, 1}
constexpr std::int32_t kOffHiLane = 32;    ///< int64 {0, ~0}
constexpr std::int32_t kOffZeroStep = 48;  ///< {0x8000000000000001, 1}
constexpr std::int32_t kOffInfPair = 64;   ///< {-inf, +inf}
constexpr std::int32_t kOffSignMask = 80;  ///< {-0.0, -0.0}
constexpr std::int32_t kOffOnePair = 96;   ///< {1.0, 1.0}
constexpr std::int32_t kOffTables = 112;   ///< {w,w} pairs, feasibles, recs

// --- emitter ----------------------------------------------------------------

class Emitter {
 public:
  /// \p elide_checks: the caller proved every op in the tape maps
  /// nonempty intervals to nonempty intervals and every preloaded
  /// constant is nonempty. Under that invariant (plus nonempty leaves,
  /// which the wrapper guards) no slot can be empty during the forward
  /// sweep, and the backward sweep aborts the instant an intersection
  /// empties a slot — so the per-operand forward emptiness checks and
  /// the per-instruction backward requirement checks are provably dead
  /// and are not emitted. The genuinely observable checks (root
  /// feasibility, every backward intersection) always remain.
  /// \p shadow_of maps a tape slot to the register-file index of its
  /// shadow pair (forward value, operand) for the backward no-narrow
  /// skip, or -1. Nonempty only under check elision.
  Emitter(const Hc4Tape& tape, const ir::Program& prog, const double* table,
          bool elide_checks, const std::vector<std::int32_t>& shadow_of)
      : tape_(tape),
        prog_(prog),
        table_addr_(reinterpret_cast<std::uint64_t>(table)),
        nmc_(tape.mul_const().size()),
        nroots_(tape.root_slots().size()),
        elide_(elide_checks),
        shadow_of_(shadow_of) {}

  /// Emits the forward sweep + root handling; returns its entry offset.
  std::size_t emit_forward() {
    const std::size_t entry = a_.size();
    prologue();
    fwd_cache_ = kNoCache;
    const std::size_t l_empty = a_.new_label();
    for (const ir::FwdInstr& f : prog_.forward) emit_fwd(f);

    // Every root's natural enclosure goes to the tail buffer *before*
    // the feasibility intersections can abort — the wrapper's fwd_roots
    // and eval_roots read the tail unconditionally, exactly like the
    // interpreter fills fwd_roots ahead of its intersect loop. With a
    // single root the two loops fuse (there is no later tail store an
    // abort could skip), reusing the enclosure already in a register.
    const std::size_t tail = tape_.num_slots();
    const std::vector<TapeSlot>& roots = tape_.root_slots();
    if (roots.size() == 1) {
      fwd_load(0, roots[0]);
      a_.movupd_store(jit::kRbx, slot_off(tail), 0);
      root_intersect(roots[0], 0, l_empty);
    } else {
      for (std::size_t i = 0; i < roots.size(); ++i) {
        fwd_load(0, roots[i]);
        a_.movupd_store(jit::kRbx, slot_off(tail + i), 0);
        fwd_cache_ = roots[i];  // xmm0 holds this root's enclosure now
      }
      for (std::size_t i = 0; i < roots.size(); ++i) {
        a_.movupd_load(0, jit::kRbx, slot_off(roots[i]));
        root_intersect(roots[i], i, l_empty);
      }
    }
    epilogue(l_empty);
    return entry;
  }

  /// Emits the backward sweep; returns its entry offset.
  std::size_t emit_backward() {
    const std::size_t entry = a_.size();
    prologue();
    // Every kMulConst site calls the feasibility helper; r12 is callee-
    // saved (and already preserved by the prologue), so load it once.
    a_.mov_ri64(jit::kR12, reinterpret_cast<std::uint64_t>(&bwd_cqf));
    bwd_cache2_ = bwd_cache4_ = kNoCache;
    const std::size_t l_empty = a_.new_label();
    for (const ir::BwdInstr& b : prog_.backward) emit_bwd(b, l_empty);
    epilogue(l_empty);
    return entry;
  }

  const std::vector<std::uint8_t>& code() const { return a_.buffer(); }

 private:
  static constexpr std::size_t kNoCache = static_cast<std::size_t>(-1);

  static std::int32_t slot_off(std::size_t slot) {
    return static_cast<std::int32_t>(slot * sizeof(Interval));
  }

  /// Register-file index of \p slot's shadow pair, or -1.
  std::int32_t shadow_base(std::size_t slot) const {
    return slot < shadow_of_.size() ? shadow_of_[slot] : -1;
  }

  /// Snapshots an eligible node's forward result and operand into its
  /// shadow pair, arming the backward no-narrow skip.
  void emit_fwd_shadow(const ir::FwdInstr& f) {
    const std::int32_t sh = shadow_base(f.dst);
    if (sh < 0) return;
    a_.movupd_load(0, jit::kRbx, slot_off(f.dst));
    a_.movupd_store(jit::kRbx, slot_off(static_cast<std::size_t>(sh)), 0);
    a_.movupd_load(1, jit::kRbx, slot_off(f.a));
    a_.movupd_store(jit::kRbx, slot_off(static_cast<std::size_t>(sh) + 1), 1);
    fwd_cache_ = f.dst;  // xmm0 holds the node's fresh value
  }

  /// Loads forward-sweep operand \p slot into xmm\p x, reusing xmm0 when
  /// the previous instruction's result (always left in xmm0) is that
  /// slot — the dependent-chain case, where dodging the store→load
  /// round trip shortens the critical path.
  void fwd_load(int x, std::size_t slot) {
    if (slot == fwd_cache_) {
      if (x != 0) a_.movapd_rr(x, 0);
    } else {
      a_.movupd_load(x, jit::kRbx, slot_off(slot));
    }
  }

  /// root ∩= feasible, with the root enclosure already in xmm0. maxpd /
  /// minpd with the root value in dst replicate the scalar intersect
  /// ternaries (NaN endpoints select the feasible operand on both
  /// paths); an already-empty or emptied root aborts, making the stored
  /// bits unobservable — same as the interpreter.
  void root_intersect(TapeSlot root, std::size_t i, std::size_t l_empty) {
    a_.movapd_load(2, jit::kRbp, feas_off(i));
    a_.movapd_rr(1, 0);
    a_.maxpd(0, 2);  // lane0: lo = v.lo > f.lo ? v.lo : f.lo
    a_.minpd(1, 2);  // lane1: hi = v.hi < f.hi ? v.hi : f.hi
    a_.movsd_rr(1, 0);
    a_.movupd_store(jit::kRbx, slot_off(root), 1);
    empty_check(1, l_empty);
    fwd_cache_ = kNoCache;
  }
  std::int32_t mc_off(std::size_t k) const {
    return kOffTables + static_cast<std::int32_t>(16 * k);
  }
  std::int32_t feas_off(std::size_t i) const {
    return kOffTables + static_cast<std::int32_t>(16 * (nmc_ + i));
  }
  std::int32_t rec_off(std::size_t k) const {
    return kOffTables + static_cast<std::int32_t>(16 * (nmc_ + nroots_ + k));
  }

  /// Entry: rdi = register file. rbx keeps the file base, rbp the
  /// constant table; three pushes leave rsp ≡ 0 (mod 16) so the callback
  /// call sites are ABI-aligned.
  void prologue() {
    a_.push(jit::kRbx);
    a_.push(jit::kRbp);
    a_.push(jit::kR12);
    a_.mov_rr64(jit::kRbx, jit::kRdi);
    a_.mov_ri64(jit::kRbp, table_addr_);
  }

  /// Shared exit: fallthrough returns 1, the empty label returns 0.
  void epilogue(std::size_t l_empty) {
    const std::size_t l_exit = a_.new_label();
    a_.mov_r32_imm(jit::kRax, 1);
    a_.jmp(l_exit);
    a_.bind(l_empty);
    a_.xor_eax_eax();
    a_.bind(l_exit);
    a_.pop(jit::kR12);
    a_.pop(jit::kRbp);
    a_.pop(jit::kRbx);
    a_.ret();
  }

  /// Branches to \p target iff xmm\p x holds an empty interval. The
  /// ja is false on NaN — matching the scalar `lo > hi` exactly.
  void empty_check(int x, std::size_t target) {
    a_.movapd_rr(7, x);
    a_.unpckhpd(7, 7);    // lane0 = hi
    a_.ucomisd(x, 7);     // lo ? hi
    a_.jcc(jit::kCcAbove, target);
  }

  /// In-place outward rounding of xmm0 = [lo, hi] — instruction-for-
  /// instruction translation of tkern::outward_pd. Clobbers xmm1-xmm3.
  void outward() {
    a_.movapd_rr(1, 0);
    a_.psrlq_imm(1, 63);                       // sign
    a_.psllq_imm(1, 1);
    a_.psubq_mem(1, jit::kRbp, kOffOnesQw);    // t = 2·sign − 1
    a_.pxor(2, 2);
    a_.psubq(2, 1);                            // −t
    a_.movsd_rr(2, 1);                         // delta = {t, −t} per lane
    a_.movapd_rr(1, 0);
    a_.paddq(1, 2);                            // stepped
    a_.xorpd(2, 2);
    a_.movapd_rr(3, 0);
    a_.cmppd(3, 2, 0);                         // zero mask
    a_.movapd_rr(2, 3);
    a_.andpd_mem(2, jit::kRbp, kOffZeroStep);  // ±0 → first subnormal
    a_.andnpd(3, 1);
    a_.orpd(2, 3);                             // stepped'
    a_.movapd_rr(1, 0);
    a_.cmppd_mem(1, jit::kRbp, kOffInfPair, 0);  // saturating ∓inf
    a_.movapd_rr(3, 0);
    a_.cmppd(3, 3, 3);                         // NaN lanes
    a_.orpd(1, 3);                             // keep mask
    a_.movapd_rr(3, 1);
    a_.andpd(3, 0);
    a_.andnpd(1, 2);
    a_.orpd(3, 1);
    a_.movapd_rr(0, 3);
  }

  void emit_fwd(const ir::FwdInstr& f) {
    switch (f.kind) {
      case ir::FwdKind::kFolded:
        return;  // preloaded by load_leaves; xmm0 untouched
      case ir::FwdKind::kCopy:
        fwd_load(0, f.a);
        a_.movupd_store(jit::kRbx, slot_off(f.dst), 0);
        fwd_cache_ = f.dst;
        return;
      case ir::FwdKind::kAdd:
      case ir::FwdKind::kSub: {
        // add_iv / operator- twins: empty operand → canonical empty,
        // else one packed op with fused outward rounding.
        const std::size_t l_emp = elide_ ? 0 : a_.new_label();
        const std::size_t l_done = elide_ ? 0 : a_.new_label();
        if (f.b == fwd_cache_ && f.a != fwd_cache_) {
          a_.movapd_rr(5, 0);  // cached b before xmm0 is overwritten
          a_.movupd_load(0, jit::kRbx, slot_off(f.a));
        } else {
          fwd_load(0, f.a);
          fwd_load(5, f.b);
        }
        if (!elide_) {
          empty_check(0, l_emp);
          empty_check(5, l_emp);
        }
        if (f.kind == ir::FwdKind::kSub) {
          a_.shufpd(5, 5, 1);  // [b.hi, b.lo]: lo−hi / hi−lo lanes
          a_.subpd(0, 5);
        } else {
          a_.addpd(0, 5);
        }
        outward();
        a_.movupd_store(jit::kRbx, slot_off(f.dst), 0);
        if (!elide_) {
          a_.jmp(l_done);
          a_.bind(l_emp);
          a_.movapd_load(0, jit::kRbp, kOffEmpty);
          a_.movupd_store(jit::kRbx, slot_off(f.dst), 0);
          a_.bind(l_done);
        }
        fwd_cache_ = f.dst;
        return;
      }
      case ir::FwdKind::kNeg: {
        // Unary minus passes an empty operand through with its original
        // bits (no canonicalization) — jump straight to the store.
        const std::size_t l_store = elide_ ? 0 : a_.new_label();
        fwd_load(0, f.a);
        if (!elide_) empty_check(0, l_store);
        a_.shufpd(0, 0, 1);
        a_.movapd_load(1, jit::kRbp, kOffSignMask);
        a_.xorpd(0, 1);
        if (!elide_) a_.bind(l_store);
        a_.movupd_store(jit::kRbx, slot_off(f.dst), 0);
        fwd_cache_ = f.dst;
        return;
      }
      case ir::FwdKind::kMulConst: {
        // tkern::mul_const: empty → empty, exact [0,0] → exact [0,0]
        // (unwidened), else two-endpoint product with outward rounding;
        // w < 0 swaps the lanes before rounding.
        const std::size_t k = static_cast<std::size_t>(f.exponent);
        const MulConstSpec& sp = tape_.mul_const()[k];
        const std::size_t l_emp = elide_ ? 0 : a_.new_label();
        const std::size_t l_zero = a_.new_label();
        const std::size_t l_done = a_.new_label();
        fwd_load(0, sp.var_slot);
        if (!elide_) empty_check(0, l_emp);
        a_.movapd_rr(1, 0);
        a_.xorpd(2, 2);
        a_.cmppd(1, 2, 0);
        a_.movmskpd(jit::kRax, 1);
        a_.cmp_eax_imm8(3);
        a_.jcc(jit::kCcEq, l_zero);
        a_.mulpd_mem(0, jit::kRbp, mc_off(k));  // × {w, w}
        if (sp.w < 0.0) a_.shufpd(0, 0, 1);
        outward();
        a_.movupd_store(jit::kRbx, slot_off(f.dst), 0);
        a_.jmp(l_done);
        a_.bind(l_zero);
        a_.xorpd(0, 0);
        a_.movupd_store(jit::kRbx, slot_off(f.dst), 0);
        if (!elide_) {
          a_.jmp(l_done);
          a_.bind(l_emp);
          a_.movapd_load(0, jit::kRbp, kOffEmpty);
          a_.movupd_store(jit::kRbx, slot_off(f.dst), 0);
        }
        a_.bind(l_done);
        fwd_cache_ = f.dst;
        return;
      }
      case ir::FwdKind::kGeneric: {
        if (f.op == expr::Op::kMul && f.b != kNoSlot) {
          emit_fwd_mul(f);
          return;
        }
        fwd_cache_ = kNoCache;  // the callback clobbers every register
        a_.lea(jit::kRdi, jit::kRbx, slot_off(f.dst));
        a_.lea(jit::kRsi, jit::kRbx, slot_off(f.a));
        if (f.b == kNoSlot) {
          if (const FwdUnaryFn fn = fwd_unary_fn(f.op)) {
            a_.mov_ri64(jit::kRax, reinterpret_cast<std::uint64_t>(fn));
            a_.call_reg(jit::kRax);
            emit_fwd_shadow(f);
            return;
          }
          a_.xor_edx_edx();
        } else {
          a_.lea(jit::kRdx, jit::kRbx, slot_off(f.b));
          if (const FwdBinaryFn fn = fwd_binary_fn(f.op)) {
            a_.mov_ri64(jit::kRax, reinterpret_cast<std::uint64_t>(fn));
            a_.call_reg(jit::kRax);
            return;
          }
        }
        a_.mov_r32_imm(jit::kRcx, static_cast<std::uint32_t>(f.op));
        a_.mov_r32_imm(jit::kR8,
                       static_cast<std::uint32_t>(
                           static_cast<std::int32_t>(f.exponent)));
        a_.mov_ri64(jit::kRax, reinterpret_cast<std::uint64_t>(&fwd_generic));
        a_.call_reg(jit::kRax);
        if (f.b == kNoSlot) emit_fwd_shadow(f);
        return;
      }
    }
  }

  /// Forward general multiply — instruction-for-instruction translation
  /// of tkern::mul_iv (itself bit-identical to interval::operator*):
  /// empty operand → canonical empty, exact [0,0] operand → exact [0,0]
  /// unwidened, else the four-product core with mul_ep's 0·∞ = 0 zero
  /// masking and fused outward rounding.
  void emit_fwd_mul(const ir::FwdInstr& f) {
    const std::size_t l_emp = elide_ ? 0 : a_.new_label();
    const std::size_t l_zero = a_.new_label();
    const std::size_t l_done = a_.new_label();
    fwd_load(6, f.a);  // va
    fwd_load(4, f.b);  // vb
    if (!elide_) {
      empty_check(6, l_emp);
      empty_check(4, l_emp);
    }
    a_.xorpd(1, 1);
    a_.movapd_rr(0, 6);
    a_.cmppd(0, 1, 0);
    a_.movmskpd(jit::kRax, 0);
    a_.cmp_eax_imm8(3);
    a_.jcc(jit::kCcEq, l_zero);  // a == [0,0]
    a_.movapd_rr(0, 4);
    a_.cmppd(0, 1, 0);
    a_.movmskpd(jit::kRax, 0);
    a_.cmp_eax_imm8(3);
    a_.jcc(jit::kCcEq, l_zero);  // b == [0,0]
    mul4_core();
    a_.movupd_store(jit::kRbx, slot_off(f.dst), 0);
    a_.jmp(l_done);
    a_.bind(l_zero);
    a_.xorpd(0, 0);
    a_.movupd_store(jit::kRbx, slot_off(f.dst), 0);
    if (!elide_) {
      a_.jmp(l_done);
      a_.bind(l_emp);
      a_.movapd_load(0, jit::kRbp, kOffEmpty);
      a_.movupd_store(jit::kRbx, slot_off(f.dst), 0);
    }
    a_.bind(l_done);
    fwd_cache_ = f.dst;
  }

  /// The four-product heart of interval::operator*: operands va = xmm6,
  /// vb = xmm4 (both nonempty, neither [0,0]); result [lo, hi] outward-
  /// rounded in xmm0. Products p14 = va·vb and p23 = va·swap(vb), each
  /// lane zeroed when either factor lane is ±0 (the mul_ep convention),
  /// then the min/max reduction. Clobbers xmm0-xmm5, preserves xmm6.
  void mul4_core() {
    a_.movapd_rr(5, 4);
    a_.shufpd(5, 5, 1);  // vbs
    a_.xorpd(0, 0);
    a_.movapd_rr(1, 6);
    a_.cmppd(1, 0, 0);  // za
    a_.movapd_rr(2, 4);
    a_.cmppd(2, 0, 0);
    a_.orpd(2, 1);  // za | zb
    a_.movapd_rr(3, 5);
    a_.cmppd(3, 0, 0);
    a_.orpd(3, 1);   // za | zbs
    a_.mulpd(4, 6);  // va·vb
    a_.andnpd(2, 4);  // p14
    a_.mulpd(5, 6);  // va·vbs
    a_.andnpd(3, 5);  // p23
    a_.movapd_rr(0, 2);
    a_.minpd(0, 3);  // mn
    a_.maxpd(2, 3);  // mx
    a_.movapd_rr(1, 0);
    a_.shufpd(1, 1, 1);
    a_.minpd(0, 1);  // lane0 = lo
    a_.movapd_rr(3, 2);
    a_.shufpd(3, 3, 1);
    a_.maxpd(2, 3);     // lane1 = hi (same _mm_max_pd operand order)
    a_.movsd_rr(2, 0);  // _mm_move_sd(hi, lo) = [lo, hi]
    a_.movapd_rr(0, 2);
    outward();
  }

  /// Register holding \p slot's current value, or -1. The backward
  /// emitter tracks the last narrowed slots (xmm2 always, xmm4 inside
  /// kAdd pairs) so chained projections — the add-ladder common case —
  /// skip the store→load round trip on the requirement reload.
  int bwd_cached_reg(std::size_t slot) const {
    if (slot == bwd_cache2_) return 2;
    if (slot == bwd_cache4_) return 4;
    return -1;
  }

  /// One refine_sub leg: target ∩= outward(r − swap(sib)), with r held
  /// in xmm6 across the whole instruction. \p sib_reg ≥ 0 takes the
  /// sibling from that register (same bits as its slot) instead of
  /// reloading it. The store is elided for demoted legs; the emptiness
  /// check — the observable part — never is. Narrowed target stays in
  /// xmm2.
  void refine_leg(TapeSlot target, TapeSlot sib, int sib_reg, bool store,
                  std::size_t l_empty) {
    if (sib_reg >= 0) {
      a_.movapd_rr(5, sib_reg);
    } else {
      a_.movupd_load(5, jit::kRbx, slot_off(sib));
    }
    a_.shufpd(5, 5, 1);
    a_.movapd_rr(0, 6);
    a_.subpd(0, 5);
    outward();
    a_.movupd_load(1, jit::kRbx, slot_off(target));  // tv
    a_.movapd_rr(2, 1);
    a_.minpd(2, 0);    // min(tv, diff)
    a_.maxpd(1, 0);    // max(tv, diff)
    a_.movsd_rr(2, 1);  // [max.lo, min.hi]
    if (store) a_.movupd_store(jit::kRbx, slot_off(target), 2);
    empty_check(2, l_empty);
  }

  /// The kMulConst variable leg: x ∩= mul_rec(r, rec, w > 0), with r in
  /// xmm6. The reciprocal multiply is an instruction-for-instruction
  /// translation of tkern::mul_rec — exact [0,0] requirement short-
  /// circuits to [0,0], else one endpoint-pair product per reciprocal
  /// bound with mul_ep zero masking, min/max selection by the sign of w,
  /// and outward rounding. The intersect replicates the scalar ternaries
  /// like the root feasibility intersections above.
  void mulconst_refine(std::size_t k, const MulConstSpec& sp,
                       std::size_t l_empty) {
    const std::size_t l_zero = a_.new_label();
    const std::size_t l_isect = a_.new_label();
    a_.movapd_rr(0, 6);
    a_.xorpd(1, 1);
    a_.cmppd(0, 1, 0);
    a_.movmskpd(jit::kRax, 0);
    a_.cmp_eax_imm8(3);
    a_.jcc(jit::kCcEq, l_zero);  // r == [0,0] → exact [0,0]
    a_.movapd_load(4, jit::kRbp, rec_off(k));
    a_.movapd_rr(5, 4);
    a_.shufpd(5, 5, 0);  // [rec.lo, rec.lo]
    a_.shufpd(4, 4, 3);  // [rec.hi, rec.hi]
    a_.xorpd(0, 0);
    a_.movapd_rr(1, 6);
    a_.cmppd(1, 0, 0);  // zr
    a_.movapd_rr(2, 5);
    a_.cmppd(2, 0, 0);
    a_.orpd(2, 1);  // zr | z(rec.lo)
    a_.movapd_rr(3, 4);
    a_.cmppd(3, 0, 0);
    a_.orpd(3, 1);   // zr | z(rec.hi)
    a_.mulpd(5, 6);  // r·rec.lo per lane
    a_.andnpd(2, 5);  // mul_ep-masked p1
    a_.mulpd(4, 6);  // r·rec.hi per lane
    a_.andnpd(3, 4);  // mul_ep-masked p2
    a_.movapd_rr(0, 2);
    a_.minpd(0, 3);  // per-lane min of the two products
    a_.maxpd(2, 3);  // per-lane max
    // w > 0: lo = min over r.lo products (lane0), hi = max over r.hi
    // products (lane1); w < 0 takes the opposite lanes.
    a_.shufpd(0, 2, sp.w > 0.0 ? 0b10 : 0b01);
    outward();
    a_.jmp(l_isect);
    a_.bind(l_zero);
    a_.xorpd(0, 0);
    a_.bind(l_isect);
    // x ∩= xmm0; an emptied (or already-empty) slot aborts, making the
    // non-canonical stored bits unobservable — same as the interpreter.
    a_.movupd_load(1, jit::kRbx, slot_off(sp.var_slot));
    a_.movapd_rr(2, 1);
    a_.maxpd(1, 0);  // lane0: x.lo > m.lo ? x.lo : m.lo
    a_.minpd(2, 0);  // lane1: x.hi < m.hi ? x.hi : m.hi
    a_.movsd_rr(2, 1);
    a_.movupd_store(jit::kRbx, slot_off(sp.var_slot), 2);
    empty_check(2, l_empty);
  }

  /// Out-of-line w ∈ r / x feasibility check (r12 holds &bwd_cqf). The
  /// spec lives in the tape's immutable mul_const_ vector; the jit holds
  /// the tape alive, so the address is stable.
  void cqf_call(TapeSlot dst, const MulConstSpec& sp, std::size_t l_empty) {
    a_.lea(jit::kRdi, jit::kRbx, slot_off(dst));
    a_.lea(jit::kRsi, jit::kRbx, slot_off(sp.var_slot));
    a_.mov_ri64(jit::kRdx, reinterpret_cast<std::uint64_t>(&sp));
    a_.call_reg(jit::kR12);
    a_.test_eax_eax();
    a_.jcc(jit::kCcEq, l_empty);
  }

  /// w ∈ r / x feasibility with the two dominant extended_div branches
  /// inline and the residual shapes routed to bwd_cqf. r is in xmm6
  /// (nonempty — the loop head checked it); x is nonempty too, because
  /// r is this node's narrowed forward value: an empty x would have made
  /// the forward value empty, and every backward narrowing that empties
  /// a slot aborts before reaching this instruction.
  ///
  /// Fast path 1 (x sign-definite): extended_div takes q1 = r / x =
  /// r · [prev(1/x.hi), next(1/x.lo)] — emitted as divpd + the shared
  /// outward and four-product cores, then a packed lo ≤ w ≤ hi test.
  /// r == [0,0] (operator*'s exact-zero special case) goes out of line.
  /// Fast path 2 (0 ∈ x and 0 ∈ r): q1 is entire, so any finite w is
  /// feasible — four ucomisd tests and no arithmetic. The sign tests
  /// route NaN to the slow path, keeping them conservative.
  /// Residual (x touches zero with r sign-definite): ray/two-piece
  /// branches — out of line. Preserves xmm6 on both fast paths.
  /// \p x_reg ≥ 0 takes x from that register (same bits as its slot —
  /// the slow-path callback still reads the slot) instead of loading it.
  void cqf_inline(std::size_t k, TapeSlot dst, const MulConstSpec& sp,
                  int x_reg, std::size_t l_empty) {
    const std::size_t l_fast = a_.new_label();
    const std::size_t l_slow = a_.new_label();
    const std::size_t l_after = a_.new_label();
    if (x_reg >= 0) {
      if (x_reg != 4) a_.movapd_rr(4, x_reg);
    } else {
      a_.movupd_load(4, jit::kRbx, slot_off(sp.var_slot));
    }
    a_.xorpd(1, 1);
    a_.ucomisd(4, 1);  // x.lo ? 0
    a_.jcc(jit::kCcAbove, l_fast);  // x.lo > 0
    a_.movapd_rr(0, 4);
    a_.unpckhpd(0, 0);
    a_.ucomisd(1, 0);  // 0 ? x.hi
    a_.jcc(jit::kCcAbove, l_fast);  // x.hi < 0
    // 0 ∈ x (x nonempty). Feasible iff 0 ∈ r, else residual.
    a_.ucomisd(1, 6);  // 0 ? r.lo
    a_.jcc(jit::kCcBelow, l_slow);  // 0 < r.lo (or NaN)
    a_.movapd_rr(0, 6);
    a_.unpckhpd(0, 0);
    a_.ucomisd(0, 1);  // r.hi ? 0
    a_.jcc(jit::kCcBelow, l_slow);  // r.hi < 0 (or NaN)
    a_.jmp(l_after);  // 0 ∈ r → q1 entire → feasible

    a_.bind(l_fast);
    a_.movapd_rr(0, 6);
    a_.cmppd(0, 1, 0);
    a_.movmskpd(jit::kRax, 0);
    a_.cmp_eax_imm8(3);
    a_.jcc(jit::kCcEq, l_slow);  // r == [0,0] → exact-zero q1
    a_.movapd_load(0, jit::kRbp, kOffOnePair);
    a_.movapd_rr(1, 4);
    a_.shufpd(1, 1, 1);  // [x.hi, x.lo]
    a_.divpd(0, 1);      // [1/x.hi, 1/x.lo]
    outward();           // rec = [prev(1/x.hi), next(1/x.lo)]
    a_.movapd_rr(4, 0);
    mul4_core();  // q1 = r · rec, outward-rounded, in xmm0
    a_.movapd_load(4, jit::kRbp, mc_off(k));  // {w, w}
    a_.movapd_rr(1, 0);
    a_.cmppd(1, 4, 2);       // lane0: q1.lo ≤ w
    a_.cmppd(4, 0, 2);       // lane1: w ≤ q1.hi
    a_.shufpd(1, 4, 0b10);
    a_.movmskpd(jit::kRax, 1);
    a_.cmp_eax_imm8(3);
    a_.jcc(jit::kCcNe, l_empty);  // w ∉ q1 → infeasible
    a_.jmp(l_after);

    a_.bind(l_slow);
    cqf_call(dst, sp, l_empty);
    a_.bind(l_after);
  }

  void emit_bwd(const ir::BwdInstr& b, std::size_t l_empty) {
    // Requirement handling. Without check elision every kind loads r and
    // emptiness-aborts, exactly like the interpreter's reverse loop
    // head. With elision the check is provably dead (any narrowing that
    // emptied a slot already aborted), so r is materialized only for the
    // kinds whose inline body consumes it — from a tracked register when
    // a previous projection just narrowed this slot, dodging the
    // store→load round trip on chained projections.
    const bool inline_neg = b.kind == ir::BwdKind::kGeneric &&
                            b.op == expr::Op::kNeg && b.b == kNoSlot;
    const bool needs_r = b.kind == ir::BwdKind::kAdd ||
                         b.kind == ir::BwdKind::kMulConst || inline_neg;
    if (!elide_ || needs_r) {
      const int rr = bwd_cached_reg(b.dst);
      if (rr >= 0) {
        a_.movapd_rr(6, rr);
      } else {
        a_.movupd_load(6, jit::kRbx, slot_off(b.dst));
      }
      if (!elide_) empty_check(6, l_empty);
    }
    switch (b.kind) {
      case ir::BwdKind::kCheckOnly:
        return;
      case ir::BwdKind::kAdd:
        refine_leg(b.a, b.b, bwd_cached_reg(b.b), /*store=*/true, l_empty);
        a_.movapd_rr(4, 2);  // narrowed a — the second leg's sibling
        refine_leg(b.b, b.a, /*sib_reg=*/4, b.store_b, l_empty);
        bwd_cache4_ = b.a;
        bwd_cache2_ = b.store_b ? b.b : kNoCache;
        return;
      case ir::BwdKind::kMulConst: {
        // The interpreter's kSpecMulConst case, with the reciprocal-
        // multiply leg inline and only the extended-division membership
        // test out of line; the var_is_a leg order is preserved exactly
        // (it decides which emptiness proof fires first).
        const std::size_t k = static_cast<std::size_t>(b.exponent);
        const MulConstSpec& sp = tape_.mul_const()[k];
        if (sp.var_is_a) {
          mulconst_refine(k, sp, l_empty);
          // mulconst_refine leaves the narrowed (and stored) x in xmm2.
          cqf_inline(k, b.dst, sp, /*x_reg=*/2, l_empty);
          bwd_cache2_ = bwd_cache4_ = kNoCache;
        } else {
          cqf_inline(k, b.dst, sp, bwd_cached_reg(sp.var_slot), l_empty);
          // The slow path clobbers every xmm register — reload r.
          a_.movupd_load(6, jit::kRbx, slot_off(b.dst));
          mulconst_refine(k, sp, l_empty);
          bwd_cache2_ = sp.var_slot;  // narrowed x, stored, in xmm2
          bwd_cache4_ = kNoCache;
        }
        return;
      }
      case ir::BwdKind::kGeneric: {
        if (inline_neg) {
          // project_node kNeg: a ∩= [-r.hi, -r.lo]. The negation is an
          // exact lane swap + sign flip (no rounding); the intersect
          // replicates the scalar ternaries, and an emptied (or already-
          // empty) operand aborts before its bits become observable.
          a_.movapd_rr(0, 6);
          a_.shufpd(0, 0, 1);
          a_.movapd_load(1, jit::kRbp, kOffSignMask);
          a_.xorpd(0, 1);
          a_.movupd_load(1, jit::kRbx, slot_off(b.a));
          a_.movapd_rr(2, 1);
          a_.maxpd(1, 0);  // lane0: a.lo > n.lo ? a.lo : n.lo
          a_.minpd(2, 0);  // lane1: a.hi < n.hi ? a.hi : n.hi
          a_.movsd_rr(2, 1);
          a_.movupd_store(jit::kRbx, slot_off(b.a), 2);
          empty_check(2, l_empty);
          bwd_cache2_ = b.a;  // xmm4 untouched — cache4 stays valid
          return;
        }
        bwd_cache2_ = bwd_cache4_ = kNoCache;  // callbacks clobber xmm
        const std::int32_t sh = b.b == kNoSlot ? shadow_base(b.dst) : -1;
        if (sh >= 0) {
          // No-narrow skip. When the requirement r is still bitwise the
          // node's forward value F and the operand a is bitwise what the
          // forward sweep read, every x ∈ a has op(x) ∈ F = r, so the
          // projection cannot prune a — the callback is provably a no-op
          // and is skipped. That makes the whole projection free on
          // no-change passes, which dominate fixpoint loops. Bitwise
          // (integer) compares keep the trigger exact; the residual bit
          // hazards go to the real projection: an a bound of ±0 (whose
          // value-equal intersect could rewrite the sign bit) and NaN
          // bounds in a or r (which defeat the containment argument).
          const std::size_t l_call = a_.new_label();
          const std::size_t l_after = a_.new_label();
          a_.movupd_load(0, jit::kRbx, slot_off(b.dst));
          a_.movupd_load(1, jit::kRbx,
                         slot_off(static_cast<std::size_t>(sh)));
          a_.pcmpeqd(1, 0);
          a_.pmovmskb(jit::kRax, 1);
          a_.cmp_eax_imm32(0xFFFF);
          a_.jcc(jit::kCcNe, l_call);  // r narrowed since the sweep
          a_.movupd_load(2, jit::kRbx, slot_off(b.a));
          a_.movupd_load(3, jit::kRbx,
                         slot_off(static_cast<std::size_t>(sh) + 1));
          a_.pcmpeqd(3, 2);
          a_.pmovmskb(jit::kRax, 3);
          a_.cmp_eax_imm32(0xFFFF);
          a_.jcc(jit::kCcNe, l_call);  // a narrowed since the sweep
          a_.xorpd(4, 4);
          a_.movapd_rr(5, 2);
          a_.cmppd(5, 4, 0);  // a == ±0 lanes
          a_.movapd_rr(3, 2);
          a_.cmppd(3, 2, 3);  // NaN lanes of a
          a_.orpd(5, 3);
          a_.movapd_rr(1, 0);
          a_.cmppd(1, 0, 3);  // NaN lanes of r
          a_.orpd(5, 1);
          a_.movmskpd(jit::kRax, 5);
          a_.test_eax_eax();
          a_.jcc(jit::kCcNe, l_call);
          a_.jmp(l_after);
          a_.bind(l_call);
          a_.lea(jit::kRdi, jit::kRbx, slot_off(b.dst));
          a_.lea(jit::kRsi, jit::kRbx, slot_off(b.a));
          // Eligible ops all have direct callbacks (skip_eligible_unary
          // is a subset of bwd_unary_fn's table).
          const BwdUnaryFn fn = bwd_unary_fn(b.op);
          a_.mov_ri64(jit::kRax, reinterpret_cast<std::uint64_t>(fn));
          a_.call_reg(jit::kRax);
          a_.test_eax_eax();
          a_.jcc(jit::kCcEq, l_empty);
          a_.bind(l_after);
          return;
        }
        a_.lea(jit::kRdi, jit::kRbx, slot_off(b.dst));
        a_.lea(jit::kRsi, jit::kRbx, slot_off(b.a));
        if (b.b == kNoSlot) {
          if (const BwdUnaryFn fn = bwd_unary_fn(b.op)) {
            a_.mov_ri64(jit::kRax, reinterpret_cast<std::uint64_t>(fn));
            a_.call_reg(jit::kRax);
            a_.test_eax_eax();
            a_.jcc(jit::kCcEq, l_empty);
            return;
          }
          a_.xor_edx_edx();
        } else {
          a_.lea(jit::kRdx, jit::kRbx, slot_off(b.b));
          if (const BwdBinaryFn fn = bwd_binary_fn(b.op)) {
            a_.mov_ri64(jit::kRax, reinterpret_cast<std::uint64_t>(fn));
            a_.call_reg(jit::kRax);
            a_.test_eax_eax();
            a_.jcc(jit::kCcEq, l_empty);
            return;
          }
        }
        a_.mov_r32_imm(jit::kRcx, static_cast<std::uint32_t>(b.op));
        a_.mov_r32_imm(jit::kR8,
                       static_cast<std::uint32_t>(
                           static_cast<std::int32_t>(b.exponent)));
        a_.mov_ri64(jit::kRax,
                    reinterpret_cast<std::uint64_t>(&bwd_generic));
        a_.call_reg(jit::kRax);
        a_.test_eax_eax();
        a_.jcc(jit::kCcEq, l_empty);
        return;
      }
    }
  }

  jit::X64Assembler a_;
  const Hc4Tape& tape_;
  const ir::Program& prog_;
  std::uint64_t table_addr_;
  std::size_t nmc_;
  std::size_t nroots_;
  bool elide_;
  const std::vector<std::int32_t>& shadow_of_;  ///< slot → shadow index
  std::size_t fwd_cache_ = kNoCache;   ///< slot whose value sits in xmm0
  std::size_t bwd_cache2_ = kNoCache;  ///< slot whose value sits in xmm2
  std::size_t bwd_cache4_ = kNoCache;  ///< slot whose value sits in xmm4
};

/// Ops whose interval semantics map nonempty inputs to nonempty outputs
/// (the check-elision closure). kDiv/kLog/kSqrt/kTan/kAtan/kPow can
/// produce empty results from nonempty operands (domain clipping or
/// division blow-ups) and keep the checked emission.
bool op_preserves_nonempty(expr::Op op) {
  using expr::Op;
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kNeg:
    case Op::kSin:
    case Op::kCos:
    case Op::kExp:
    case Op::kSqr:
    case Op::kTanh:
    case Op::kSigmoid:
    case Op::kRelu:
    case Op::kAbs:
    case Op::kMin:
    case Op::kMax:
      return true;
    default:
      return false;
  }
}

}  // namespace

// --- Hc4Jit -----------------------------------------------------------------

std::shared_ptr<const Hc4Jit> Hc4Jit::compile(
    std::shared_ptr<const Hc4Tape> tape) {
  // Degradation-ladder rung: a throw here (injected or real) is caught
  // by the contractor setup, which falls back to the tape interpreter.
  core::FaultRegistry::check(core::FaultPoint::kJitCompile);
  if (!jit::ExecMemory::supported()) {
    throw jit::JitUnavailable("jit: unsupported host (x86-64 Linux/macOS only)");
  }
  const std::size_t nroots = tape->root_slots().size();
  if ((tape->num_slots() + nroots) * sizeof(Interval) >
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    throw jit::JitUnavailable("jit: register file exceeds disp32 range");
  }

  const bool dump = core::RuntimeConfig::active().jit_dump;
  if (dump) tape->dump(std::cerr);
  ir::Program prog = ir::Program::from_tape(*tape);
  prog.optimize(*tape);

  // Constant table: fixed masks, then {w, w} per mul-const spec, then
  // the per-root feasible intervals, then the precompiled reciprocal
  // interval per mul-const spec (the backward sweep's multiply operand).
  const std::size_t nmc = tape->mul_const().size();
  linalg::AlignedDoubles table =
      linalg::aligned_doubles(14 + 2 * (2 * nmc + nroots));
  double* d = table.get();
  const double inf = std::numeric_limits<double>::infinity();
  d[0] = inf;
  d[1] = -inf;
  d[2] = d[3] = std::bit_cast<double>(std::uint64_t{1});
  d[4] = 0.0;
  d[5] = std::bit_cast<double>(~std::uint64_t{0});
  d[6] = std::bit_cast<double>(std::uint64_t{0x8000000000000001ULL});
  d[7] = std::bit_cast<double>(std::uint64_t{1});
  d[8] = -inf;
  d[9] = inf;
  d[10] = d[11] = -0.0;
  d[12] = d[13] = 1.0;
  for (std::size_t k = 0; k < nmc; ++k) {
    d[14 + 2 * k] = d[15 + 2 * k] = tape->mul_const()[k].w;
  }
  for (std::size_t i = 0; i < nroots; ++i) {
    d[14 + 2 * nmc + 2 * i] = tape->root_feasible()[i].lo();
    d[15 + 2 * nmc + 2 * i] = tape->root_feasible()[i].hi();
  }
  for (std::size_t k = 0; k < nmc; ++k) {
    d[14 + 2 * (nmc + nroots) + 2 * k] = tape->mul_const()[k].rec.lo();
    d[15 + 2 * (nmc + nroots) + 2 * k] = tape->mul_const()[k].rec.hi();
  }

  // Check-elision closure: when every forward op maps nonempty operands
  // to nonempty results and every preloaded constant is nonempty, no
  // slot can go empty mid-sweep (the wrapper guards the one remaining
  // input — empty leaves — by routing those boxes to the interpreter),
  // so the emitter drops the provably-dead emptiness checks.
  bool closed = true;
  for (const Interval& c : tape->const_values()) {
    if (c.is_empty()) closed = false;
  }
  for (const auto& [slot, v] : prog.folded_consts) {
    if (v.is_empty()) closed = false;
  }
  for (const ir::FwdInstr& f : prog.forward) {
    if (f.kind == ir::FwdKind::kGeneric && !op_preserves_nonempty(f.op)) {
      closed = false;
    }
  }

  // Between calls only the slots some store can touch go stale: the
  // backward projection targets and the root-feasibility intersections
  // (the forward sweep rewrites every compute slot from scratch). When
  // none of those is a constant (leaf or folded) slot, the per-call
  // constant re-seed in load_leaves is dead and only the variable
  // leaves need copying — a measurable win on contraction-heavy loops.
  const std::size_t nconst = tape->const_values().size();
  auto is_const_slot = [&](TapeSlot s) {
    if (static_cast<std::size_t>(s) < nconst) return true;
    for (const auto& [slot, v] : prog.folded_consts) {
      if (slot == s) return true;
    }
    return false;
  };
  bool reseed = false;
  for (const ir::BwdInstr& b : prog.backward) {
    switch (b.kind) {
      case ir::BwdKind::kCheckOnly:
        break;
      case ir::BwdKind::kAdd:
        if (is_const_slot(b.a) || (b.store_b && is_const_slot(b.b))) {
          reseed = true;
        }
        break;
      case ir::BwdKind::kMulConst:
        if (is_const_slot(
                tape->mul_const()[static_cast<std::size_t>(b.exponent)]
                    .var_slot)) {
          reseed = true;
        }
        break;
      case ir::BwdKind::kGeneric:
        if (is_const_slot(b.a) || (b.b != kNoSlot && is_const_slot(b.b))) {
          reseed = true;
        }
        break;
    }
  }
  for (const TapeSlot r : tape->root_slots()) {
    if (is_const_slot(r)) reseed = true;
  }

  // Shadow pairs for the backward no-narrow skip (see emit_bwd): one
  // (forward value, operand) snapshot per eligible transcendental
  // projection, appended after the root tail. Armed only under check
  // elision — the skip's containment argument needs nonempty proper
  // operands, which the closure (plus the wrapper's empty-leaf guard)
  // guarantees.
  std::vector<std::int32_t> shadow_of(tape->num_slots(), -1);
  std::size_t nshadow = 0;
  if (closed) {
    for (const ir::BwdInstr& b : prog.backward) {
      if (b.kind == ir::BwdKind::kGeneric && b.b == kNoSlot &&
          skip_eligible_unary(b.op)) {
        shadow_of[b.dst] = static_cast<std::int32_t>(
            tape->num_slots() + nroots + 2 * nshadow);
        ++nshadow;
      }
    }
  }
  if ((tape->num_slots() + nroots + 2 * nshadow) * sizeof(Interval) >
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    throw jit::JitUnavailable("jit: register file exceeds disp32 range");
  }

  Emitter em(*tape, prog, d, closed, shadow_of);
  const std::size_t fwd_off = em.emit_forward();
  const std::size_t bwd_off = em.emit_backward();

  std::shared_ptr<const Hc4Jit> jit(
      new Hc4Jit(std::move(tape), std::move(prog), std::move(table), em.code(),
                 fwd_off, bwd_off, closed, reseed, nshadow));
  if (dump) {
    std::cerr << "jit: " << jit->code_size() << " bytes (forward @" << fwd_off
              << ", backward @" << bwd_off
              << (closed ? ", checks elided" : ", checks emitted") << ")\n";
  }
  return jit;
}

Hc4Jit::Hc4Jit(std::shared_ptr<const Hc4Tape> tape, ir::Program prog,
               linalg::AlignedDoubles data,
               const std::vector<std::uint8_t>& code, std::size_t fwd_off,
               std::size_t bwd_off, bool needs_nonempty_leaves,
               bool reseed_consts, std::size_t shadow_pairs)
    : tape_(std::move(tape)),
      prog_(std::move(prog)),
      data_(std::move(data)),
      exec_(code.data(), code.size()),
      forward_fn_(reinterpret_cast<JitFn>(
          reinterpret_cast<std::uintptr_t>(exec_.entry(fwd_off)))),
      backward_fn_(reinterpret_cast<JitFn>(
          reinterpret_cast<std::uintptr_t>(exec_.entry(bwd_off)))),
      code_size_(code.size()),
      needs_nonempty_leaves_(needs_nonempty_leaves),
      reseed_consts_(reseed_consts),
      shadow_pairs_(shadow_pairs) {}

/// True iff some variable leaf of \p box is empty — the one input shape
/// the check-elided code must not see.
static bool has_empty_leaf(const interval::Box& box,
                           const std::vector<std::uint32_t>& dims) {
  for (const std::uint32_t dim : dims) {
    if (box[dim].is_empty()) return true;
  }
  return false;
}

std::size_t Hc4Jit::register_count() const {
  return tape_->num_slots() + tape_->root_slots().size() + 2 * shadow_pairs_;
}

Hc4Jit::Registers Hc4Jit::make_registers() const {
  Registers regs(register_count());
  std::copy(tape_->const_values().begin(), tape_->const_values().end(),
            regs.begin());
  for (const auto& [slot, v] : prog_.folded_consts) regs[slot] = v;
  return regs;
}

void Hc4Jit::load_leaves(const interval::Box& box, Registers& regs) const {
  // Same re-seed protocol as the interpreter — one contiguous copy for
  // the leaf constants — plus the slots the fold pass turned constant
  // (their backward projections narrow them like any leaf). Skipped
  // entirely when compile() proved no store can touch a constant slot;
  // the values seeded by make_registers then persist across calls.
  if (reseed_consts_) {
    std::copy(tape_->const_values().begin(), tape_->const_values().end(),
              regs.begin());
    for (const auto& [slot, v] : prog_.folded_consts) regs[slot] = v;
  }
  Interval* const var_regs = regs.data() + tape_->const_values().size();
  const std::vector<std::uint32_t>& dims = tape_->var_dims();
  for (std::size_t i = 0; i < dims.size(); ++i) {
    var_regs[i] = box[dims[i]];
  }
}

ContractResult Hc4Jit::contract(interval::Box& box, Registers& regs,
                                std::vector<Interval>* fwd_roots) const {
  if (needs_nonempty_leaves_ && has_empty_leaf(box, tape_->var_dims())) {
    // Cold path: delegate to the interpreter, bit-identical by contract.
    Hc4Tape::Registers tregs = tape_->make_registers();
    return tape_->contract(box, tregs, fwd_roots);
  }
  if (regs.size() != register_count()) regs = make_registers();
  load_leaves(box, regs);
  const int fwd_ok = forward_fn_(regs.data());

  // The tail buffer holds every root's pre-intersection enclosure even
  // when a feasibility intersect aborted — mirror the interpreter, which
  // fills fwd_roots before its intersect loop.
  if (fwd_roots != nullptr) {
    const std::size_t n = tape_->root_slots().size();
    fwd_roots->resize(n);
    const Interval* const tail = regs.data() + tape_->num_slots();
    for (std::size_t i = 0; i < n; ++i) (*fwd_roots)[i] = tail[i];
  }
  if (fwd_ok == 0) return ContractResult::kEmpty;

  core::FaultRegistry::check(core::FaultPoint::kHc4Backward);
  if (backward_fn_(regs.data()) == 0) return ContractResult::kEmpty;

  // Read back the narrowed variable slots.
  bool changed = false;
  const std::vector<TapeSlot>& vslots = tape_->var_slots();
  const std::vector<std::uint32_t>& dims = tape_->var_dims();
  for (std::size_t i = 0; i < vslots.size(); ++i) {
    const std::uint32_t dim = dims[i];
    const Interval narrowed = intersect(box[dim], regs[vslots[i]]);
    if (narrowed.is_empty()) return ContractResult::kEmpty;
    if (!(narrowed == box[dim])) {
      box[dim] = narrowed;
      changed = true;
    }
  }
  return changed ? ContractResult::kContracted : ContractResult::kNoChange;
}

void Hc4Jit::eval_roots(const interval::Box& box, Registers& regs,
                        std::vector<Interval>& out) const {
  if (needs_nonempty_leaves_ && has_empty_leaf(box, tape_->var_dims())) {
    Hc4Tape::Registers tregs = tape_->make_registers();
    tape_->eval_roots(box, tregs, out);
    return;
  }
  if (regs.size() != register_count()) regs = make_registers();
  load_leaves(box, regs);
  (void)forward_fn_(regs.data());  // tail is complete even on abort
  const std::size_t n = tape_->root_slots().size();
  out.resize(n);
  const Interval* const tail = regs.data() + tape_->num_slots();
  for (std::size_t i = 0; i < n; ++i) out[i] = tail[i];
}

}  // namespace bcert::smt
