#pragma once
/// \file tape.h
/// \brief Compiled interval bytecode for HC4 contraction.
///
/// `Hc4Tape` lowers one `Conjunction` over an `ExprPool` into a flat
/// program executed against a dense `Interval` register file:
///
///   * one register *slot* per reachable DAG node, numbered in
///     topological order (children before parents — the same order the
///     tree-walking evaluator uses, so results are bit-identical);
///   * leaf loads are data, not code: constant slots are preloaded from
///     `const_slots_/const_values_` and variable slots are copied from
///     the box through `var_slots_/var_dims_` — the sweeps never dispatch
///     on kConst/kVar;
///   * every interior node becomes one `TapeInstr { op, exponent, dst,
///     a, b }`; the forward sweep runs the instructions in order
///     (`regs[dst] = op(regs[a], regs[b])`) and the backward sweep runs
///     them in reverse, projecting `regs[dst]`'s requirement onto
///     `regs[a]`/`regs[b]` (src/smt/projections.h).
///
/// A tape is immutable after construction and holds no mutable scratch,
/// so concurrent ICP workers share one `const Hc4Tape` and keep only a
/// private register file (`make_registers`) — compile once per query, not
/// once per worker — and the flat layout is the substrate for future
/// SIMD interval kernels.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/expr/expr.h"
#include "src/interval/box.h"
#include "src/interval/box_batch.h"
#include "src/interval/interval.h"
#include "src/linalg/vector.h"
#include "src/smt/constraint.h"
#include "src/smt/keyed_cache.h"

namespace bcert::smt {

class Hc4Jit;  // src/smt/jit/hc4_jit.h — native backend over a tape

/// Cross-lane SIMD tier of the *batched* tape sweeps. All tiers are
/// bit-identical per lane (the batch differential tests check every
/// available tier against the scalar tape):
///  * kAvx2   — two intervals (two boxes' worth of one register slot) per
///              256-bit operation; requires AVX2 at runtime.
///  * kSse2   — one interval per 128-bit operation, the same kernels the
///              scalar tape sweeps use.
///  * kScalar — portable per-lane twins of the SSE2 kernels.
enum class SimdTier : std::uint8_t { kScalar, kSse2, kAvx2 };

const char* simd_tier_name(SimdTier t);

/// True when \p t can execute on this build + CPU.
bool simd_tier_available(SimdTier t);

/// Highest available tier, overridable via BCERT_ICP_SIMD
/// ("avx2" / "sse2" / "scalar"; an unavailable or unknown request falls
/// back to the best available tier with a one-time stderr warning).
/// Cached after the first call.
SimdTier resolve_simd_tier();

/// Outcome of one contraction pass.
enum class ContractResult : std::uint8_t {
  kEmpty,       ///< box proven infeasible
  kContracted,  ///< box narrowed
  kNoChange,    ///< fixpoint for this pass
};

/// Register slot index inside a tape's register file.
using TapeSlot = std::uint32_t;
inline constexpr TapeSlot kNoSlot = 0xFFFFFFFFu;

/// One interior-node instruction: dst = op(a, b). Packed to 16 bytes so
/// the sweeps stream four instructions per cache line.
struct TapeInstr {
  TapeSlot dst = kNoSlot;
  TapeSlot a = kNoSlot;
  TapeSlot b = kNoSlot;  ///< kNoSlot for unary ops
  expr::Op op = expr::Op::kConst;
  std::int8_t spec = 0;       ///< specialization tag (kSpec* below)
  std::int16_t exponent = 0;  ///< kPow exponent, or spec-table index
};
static_assert(sizeof(TapeInstr) == 16);

/// TapeInstr::spec values.
inline constexpr std::int8_t kSpecNone = 0;
/// kMul with one constant operand: `exponent` indexes MulConstSpec.
inline constexpr std::int8_t kSpecMulConst = 1;

/// Compile-time data for a multiply-by-constant instruction (the bulk of
/// NN-derived conjunctions: every weight product). The forward product
/// needs only two endpoint multiplies (multiplication by a fixed-sign
/// constant is monotone, bit-for-bit equal to the 4-product general
/// path), and the backward reversal's division by [w, w] collapses to a
/// multiply with this precomputed outward-rounded reciprocal. Sound for
/// shared constant nodes: a point requirement [w, w] can only stay
/// [w, w] or go empty (which aborts the sweep), so the reciprocal can
/// never go stale mid-sweep.
struct MulConstSpec {
  double w = 0.0;                ///< the constant operand
  interval::Interval rec;        ///< outward-rounded [1/w, 1/w] enclosure
  TapeSlot var_slot = kNoSlot;   ///< the non-constant operand
  TapeSlot const_slot = kNoSlot;
  bool var_is_a = false;  ///< preserves the generic projection order
};

/// Immutable compiled HC4 program for one conjunction.
class Hc4Tape {
 public:
  /// Per-worker mutable state: the flat interval register file.
  using Registers = std::vector<interval::Interval>;

  Hc4Tape(const expr::ExprPool& pool, Conjunction conjunction);

  const Conjunction& conjunction() const { return conjunction_; }
  std::size_t num_slots() const { return num_slots_; }
  const std::vector<TapeInstr>& code() const { return code_; }

  // Read-only views of the leaf/root tables, consumed by the IR lowering
  // (src/smt/ir) and the native backend (src/smt/jit), which replay the
  // exact same load/readback protocol as the interpreter.
  const std::vector<MulConstSpec>& mul_const() const { return mul_const_; }
  const std::vector<TapeSlot>& var_slots() const { return var_slots_; }
  const std::vector<std::uint32_t>& var_dims() const { return var_dims_; }
  const std::vector<TapeSlot>& const_slots() const { return const_slots_; }
  const std::vector<interval::Interval>& const_values() const {
    return const_values_;
  }
  const std::vector<TapeSlot>& root_slots() const { return root_slots_; }
  const std::vector<interval::Interval>& root_feasible() const {
    return root_feasible_;
  }

  /// Flat, self-contained copy of a compiled tape — everything except
  /// the pool-relative `conjunction()` (whose relations are recorded so
  /// a restored tape can be validated and rebound). This is the payload
  /// the persistent warm-state store (src/smt/cache_io) serializes,
  /// keyed by the conjunction's `content_signature`.
  struct Image {
    std::vector<Rel> rels;  ///< conjunction relations, in root order
    std::vector<TapeInstr> code;
    std::vector<MulConstSpec> mul_const;
    std::vector<TapeSlot> var_slots;
    std::vector<std::uint32_t> var_dims;
    std::vector<TapeSlot> const_slots;
    std::vector<interval::Interval> const_values;
    std::vector<TapeSlot> root_slots;
    std::vector<interval::Interval> root_feasible;
    std::uint64_t num_slots = 0;
  };

  /// Snapshot of this tape's flat contents (deep copy).
  Image image() const;

  /// Validated reconstruction of a tape from a (possibly corrupt)
  /// image. Every structural invariant the compiler establishes is
  /// re-checked — slot layout ([consts | vars | interiors] in dense
  /// schedule order), slot bounds, opcode range, mul-const
  /// specialization wiring (including the recomputed outward-rounded
  /// reciprocal) and the relation-derived root feasible intervals.
  /// Returns null on any violation; the caller falls back to a cold
  /// compile. The restored tape's `conjunction()` carries the recorded
  /// relations but no live ExprIds — it is a *prototype*, only handed
  /// out after rebinding to a live conjunction (the ctor below).
  static std::shared_ptr<const Hc4Tape> restore(const Image& img);

  /// Rebinds a restored prototype to the live conjunction it is being
  /// adopted for (bit-identical flat program, live ExprIds). Checks the
  /// `tape_compile` fault point exactly like a real compile, so the
  /// degradation ladder sees warm restores and cold compiles alike.
  Hc4Tape(const Hc4Tape& proto, Conjunction conjunction);

  /// Human-readable disassembly: one header line, one line per leaf
  /// binding, one line per instruction ("%dst = op %a, %b"), one line per
  /// constraint root. Exactly `code().size()` lines start with "  %" and
  /// an instruction mnemonic, so dumps round-trip instruction counts (the
  /// disassembler unit test relies on this).
  void dump(std::ostream& os) const;

  /// Fresh register file sized for this tape (constants preloaded).
  Registers make_registers() const;

  /// One forward+backward HC4 pass over \p box using \p regs as scratch.
  /// When \p fwd_roots is non-null it receives the forward (natural
  /// extension) enclosure of every constraint root — the values
  /// `certainly_satisfied`/`certainly_violated` need — at no extra cost.
  ContractResult contract(interval::Box& box, Registers& regs,
                          std::vector<interval::Interval>* fwd_roots) const;

  /// Forward-only evaluation of the constraint roots over \p box.
  void eval_roots(const interval::Box& box, Registers& regs,
                  std::vector<interval::Interval>& out) const;

  // --- batched execution (structure-of-arrays lanes) -----------------------

  /// Register file for a batch of boxes: slot-major, with each slot
  /// holding `lanes` interleaved [lo, hi] pairs (stride padded so every
  /// slot row is 32-byte aligned). Lanes are independent boxes; the
  /// batched sweeps run the same instruction stream across all lanes.
  /// Also owns the sweeps' per-call scratch (lane masks, fixpoint
  /// bookkeeping, root enclosures), reused across frontier rounds so the
  /// hot loop never touches the allocator.
  struct BatchRegisters {
    std::size_t lanes = 0;
    std::size_t stride = 0;  ///< doubles per slot (2 × padded lane count)
    linalg::AlignedDoubles data;
    // Scratch below is transient per contract_fixpoint_batch call.
    std::vector<std::uint8_t> active, alive, any_change, roots_valid,
        pass_alive, leg_empty, need;
    std::vector<double> before;
    std::vector<interval::Interval> roots;
  };

  /// Fresh batch register file for up to \p lanes boxes.
  BatchRegisters make_batch_registers(std::size_t lanes) const;

  /// Per-lane outcome of contract_fixpoint_batch.
  struct LaneOutcome {
    ContractResult result = ContractResult::kNoChange;
    /// certainly_satisfied over the lane's contracted box (only
    /// meaningful when result != kEmpty) — computed exactly as the
    /// scalar hot loop computes it, reusing the final pass's forward
    /// enclosures when that pass was a fixpoint.
    bool satisfied = false;
  };

  /// Batched twin of `contract_fixpoint` + `certainly_satisfied` over
  /// every lane of \p batch (narrowed in place). Each lane runs the
  /// identical pass/fixpoint/certainty sequence the scalar path runs for
  /// the corresponding Box, so surviving lanes are bit-identical to
  /// scalar contraction; `regs` must come from make_batch_registers with
  /// capacity ≥ batch.size(). Uses resolve_simd_tier() for the kernels;
  /// the explicit-tier overload exists for the differential tests.
  void contract_fixpoint_batch(interval::BoxBatch& batch,
                               BatchRegisters& regs, int max_passes,
                               double ratio, LaneOutcome* out) const;
  void contract_fixpoint_batch(interval::BoxBatch& batch,
                               BatchRegisters& regs, int max_passes,
                               double ratio, LaneOutcome* out,
                               SimdTier tier) const;

 private:
  Hc4Tape() = default;  ///< empty shell restore() fills field by field

  /// Loads constants and the box's variable dimensions into \p regs.
  void load_leaves(const interval::Box& box, Registers& regs) const;
  /// Runs the instruction stream front to back.
  void forward(Registers& regs) const;

  Conjunction conjunction_;
  std::vector<TapeInstr> code_;
  std::vector<MulConstSpec> mul_const_;
  std::vector<TapeSlot> var_slots_;   // parallel arrays: slot ↔ box dim
  std::vector<std::uint32_t> var_dims_;
  std::vector<TapeSlot> const_slots_;  // parallel arrays: slot ↔ value
  std::vector<interval::Interval> const_values_;
  std::vector<TapeSlot> root_slots_;  // aligned with conjunction_
  std::vector<interval::Interval> root_feasible_;
  std::size_t num_slots_ = 0;
};

/// Multi-query tape cache, keyed by conjunction signature (constraint
/// root ids + relations). The verifier's LP ↔ SMT refinement loop solves
/// sequences of closely related queries — notably the adaptive-δ
/// re-checks, which reuse *identical* hash-consed conjunctions — and a
/// tape is immutable and self-contained, so compiled schedules can be
/// shared across IcpSolver instances. ExprIds are only meaningful
/// relative to their pool, so the pool's address is part of the key;
/// keep a cache no longer than the pool it serves.
///
/// The store is a bounded LRU (`KeyedLruCache`): each LP ↔ SMT iteration
/// mints fresh W constants (new ExprIds, new signatures), so a long
/// synthesis run would otherwise grow the cache without limit; evicting
/// the least-recently-used tapes keeps exactly the live working set —
/// current candidate × a few check kinds — resident. `stats()` exposes
/// hit/miss/eviction counters.
class TapeCache {
 public:
  /// Default LRU capacity (entries, not bytes).
  static constexpr std::size_t kMaxEntries = 64;

  explicit TapeCache(std::size_t capacity = kMaxEntries)
      : tapes_(capacity), jits_(capacity) {}

  /// Returns the cached tape for \p c over \p pool, compiling on miss.
  std::shared_ptr<const Hc4Tape> get_or_compile(const expr::ExprPool& pool,
                                                const Conjunction& c);

  /// Returns the cached native compilation for \p c over \p pool,
  /// running tape → IR → x86-64 emission on miss. Shares the same
  /// structural signature as the tape store (the jit is a pure function
  /// of the tape). Throws (JitUnavailable, FaultInjected, ...) when
  /// emission is impossible; failures are never cached, so a transient
  /// armed `jit_compile` fault does not poison later lookups.
  std::shared_ptr<const Hc4Jit> get_or_compile_jit(const expr::ExprPool& pool,
                                                   const Conjunction& c);

  std::size_t size() const { return tapes_.size(); }

  /// Hit/miss/eviction counters and current occupancy (tape store).
  KeyedCacheStats stats() const { return tapes_.stats(); }
  /// Same counters for the native-code store.
  KeyedCacheStats jit_stats() const { return jits_.stats(); }

  // --- persistent warm state (src/smt/cache_io, bcertd) ---------------------

  /// One exportable entry: the conjunction's pool-independent content
  /// signature plus the shared immutable tape.
  struct WarmEntry {
    Sig128 content;
    std::shared_ptr<const Hc4Tape> tape;
  };

  /// Everything worth persisting: the live LRU contents (MRU first)
  /// plus imported warm prototypes not yet re-adopted this run (so an
  /// idle daemon does not bleed state across restart cycles). One entry
  /// per content signature; live entries win.
  std::vector<WarmEntry> export_entries() const;

  /// Installs restored prototypes into the warm side table. A later
  /// `get_or_compile` miss whose conjunction hashes to an imported
  /// signature adopts the prototype (rebound to the live conjunction)
  /// instead of compiling — bit-identical by the content-signature
  /// contract — and counts it in `warm_restores()`.
  void import_entries(std::vector<WarmEntry> entries);

  /// Compiles avoided by adopting an imported prototype — the counter
  /// proving a snapshot-warmed process actually took the warm path.
  std::uint64_t warm_restores() const {
    return warm_restores_.load(std::memory_order_relaxed);
  }

 private:
  using Signature =
      std::pair<const void*, std::vector<std::pair<expr::ExprId, Rel>>>;
  static Signature signature_of(const expr::ExprPool& pool,
                                const Conjunction& c);

  /// LRU value: the tape plus its content signature (computed once on
  /// the miss path, kept so export never needs the — possibly dead —
  /// pool the key points at).
  struct CachedTape {
    std::shared_ptr<const Hc4Tape> tape;
    Sig128 content;
  };

  KeyedLruCache<Signature, const CachedTape> tapes_;
  KeyedLruCache<Signature, const Hc4Jit> jits_;
  mutable std::mutex warm_mutex_;
  std::map<Sig128, std::shared_ptr<const Hc4Tape>> warm_;
  std::atomic<std::uint64_t> warm_restores_{0};
};

}  // namespace bcert::smt
