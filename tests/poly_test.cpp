// Tests for polynomial templates (MonomialBasis / PolynomialForm),
// polynomial LP synthesis, and the polynomial barrier verifier.
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "src/core/poly_verifier.h"
#include "src/core/verifier.h"
#include "src/dubins/error_dynamics.h"
#include "src/dubins/training.h"
#include "src/expr/eval.h"

namespace bcert::core {
namespace {

using linalg::Vector;
constexpr double kPi = 3.14159265358979323846;

TEST(MonomialBasis, QuadraticBasisMatchesQuadraticForm) {
  const MonomialBasis basis = MonomialBasis::quadratic(2);
  EXPECT_EQ(basis.size(), 3u);  // x², xy, y²
  for (std::size_t k = 0; k < basis.size(); ++k) {
    EXPECT_EQ(basis.degree(k), 2);
  }
}

TEST(MonomialBasis, CountsForDegreeRange) {
  // Degree 2..4 in 2 vars: 3 + 4 + 5 = 12 monomials.
  const MonomialBasis basis(2, 2, 4);
  EXPECT_EQ(basis.size(), 12u);
  // 3 vars, degree exactly 3: C(3+3-1, 3) = 10.
  EXPECT_EQ(MonomialBasis(3, 3, 3).size(), 10u);
}

TEST(MonomialBasis, RejectsBadArguments) {
  EXPECT_THROW(MonomialBasis(0, 2, 2), std::invalid_argument);
  EXPECT_THROW(MonomialBasis(2, 0, 2), std::invalid_argument);
  EXPECT_THROW(MonomialBasis(2, 3, 2), std::invalid_argument);
}

TEST(MonomialBasis, ValueAndGradient) {
  const MonomialBasis basis(2, 2, 3);
  const Vector x{2.0, -1.5};
  for (std::size_t k = 0; k < basis.size(); ++k) {
    const auto& e = basis.exponents(k);
    const double expected = std::pow(x[0], e[0]) * std::pow(x[1], e[1]);
    EXPECT_NEAR(basis.value(k, x), expected, 1e-12);
    // Finite-difference gradient check.
    const Vector g = basis.gradient(k, x);
    const double h = 1e-7;
    for (std::size_t i = 0; i < 2; ++i) {
      Vector xp = x, xm = x;
      xp[i] += h;
      xm[i] -= h;
      const double fd = (basis.value(k, xp) - basis.value(k, xm)) / (2 * h);
      EXPECT_NEAR(g[i], fd, 1e-4);
    }
  }
}

TEST(PolynomialForm, EvaluationAndSymbolicAgree) {
  const MonomialBasis basis(2, 2, 4);
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> c(-1.0, 1.0);
  Vector coeffs(basis.size());
  for (std::size_t k = 0; k < coeffs.size(); ++k) coeffs[k] = c(rng);
  const PolynomialForm w(basis, coeffs);

  expr::ExprPool pool;
  const expr::ExprId e = w.to_expr(pool);
  std::uniform_real_distribution<double> d(-2.0, 2.0);
  for (int i = 0; i < 100; ++i) {
    const Vector x{d(rng), d(rng)};
    EXPECT_NEAR(pool.eval(e, x), w.value(x), 1e-10);
  }
}

TEST(PolynomialForm, GradientMatchesFiniteDifference) {
  const MonomialBasis basis(2, 2, 4);
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> c(-1.0, 1.0);
  Vector coeffs(basis.size());
  for (std::size_t k = 0; k < coeffs.size(); ++k) coeffs[k] = c(rng);
  const PolynomialForm w(basis, coeffs);
  const Vector x{0.7, -1.1};
  const Vector g = w.gradient(x);
  const double h = 1e-7;
  for (std::size_t i = 0; i < 2; ++i) {
    Vector xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    EXPECT_NEAR(g[i], (w.value(xp) - w.value(xm)) / (2 * h), 1e-4);
  }
}

TEST(PolynomialForm, ToStringReadable) {
  const MonomialBasis basis(2, 2, 2);
  PolynomialForm w(basis, Vector{1.0, 0.0, 2.0});
  const std::string s = w.to_string();
  EXPECT_NE(s.find("x0^2"), std::string::npos);
  EXPECT_NE(s.find("x1^2"), std::string::npos);
  EXPECT_EQ(s.find("x0*x1"), std::string::npos);  // zero coeff dropped
}

TEST(PolySynthesis, QuarticRecoversLyapunovForCubicSystem) {
  // ẋ = -x³: W = x² works but so does x⁴; decrease is cubic-fast.
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> d(-1.5, 1.5);
  std::vector<FieldSample> samples;
  for (int i = 0; i < 80; ++i) {
    Vector x{d(rng)};
    if (std::fabs(x[0]) < 0.05) continue;
    samples.push_back({x, Vector{-x[0] * x[0] * x[0]}});
  }
  const MonomialBasis basis(1, 2, 4);
  const PolySynthesisResult r =
      synthesize_polynomial_candidate(samples, basis);
  ASSERT_TRUE(r.feasible);
  // Decrease at fresh points.
  for (int i = 0; i < 50; ++i) {
    Vector x{d(rng)};
    if (std::fabs(x[0]) < 0.1) continue;
    const Vector f{-x[0] * x[0] * x[0]};
    EXPECT_LT(dot(r.candidate.gradient(x), f), 0.0);
  }
}

BarrierProblem dubins_problem(expr::ExprPool& pool,
                              const nn::FeedforwardNet& controller) {
  const dubins::ErrorModel model{1.0, 0.0};
  BarrierProblem p;
  p.pool = &pool;
  p.sim_field = dubins::closed_loop_field(model, controller);
  p.sym_field = dubins::closed_loop_field_expr(model, controller, pool);
  p.initial_set = {{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
  p.safe_rect = {{-5.0, -(kPi / 2.0 - 0.01)}, {5.0, kPi / 2.0 - 0.01}};
  return p;
}

TEST(PolyVerifier, QuarticTemplateCertifiesDubins) {
  expr::ExprPool pool;
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 42);
  PolyVerifierOptions opts;
  opts.max_degree = 4;
  PolyBarrierVerifier verifier(dubins_problem(pool, controller), opts);
  const PolyVerifyResult r = verifier.verify();
  ASSERT_EQ(r.status, VerifyStatus::kSafe) << verify_status_name(r.status);
  ASSERT_TRUE(r.poly_generator.has_value());
  EXPECT_GT(r.level, 0.0);

  // X0 inside the level set; boundary of the safe rect outside it.
  const Rect x0 = verifier.problem().initial_set;
  for (const Vector& v : x0.vertices()) {
    EXPECT_LE(r.poly_generator->value(v), r.level + 1e-9);
  }
  const Rect s = verifier.problem().safe_rect;
  for (double th = s.lo[1]; th <= s.hi[1]; th += 0.15) {
    EXPECT_GT(r.poly_generator->value(Vector{s.lo[0], th}), r.level);
    EXPECT_GT(r.poly_generator->value(Vector{s.hi[0], th}), r.level);
  }
}

TEST(PolyVerifier, DegreeTwoAgreesWithQuadraticPipeline) {
  expr::ExprPool pool_a, pool_b;
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 7);
  PolyVerifierOptions popts;
  popts.max_degree = 2;
  PolyBarrierVerifier pv(dubins_problem(pool_a, controller), popts);
  BarrierVerifier qv(dubins_problem(pool_b, controller), {});
  const PolyVerifyResult pr = pv.verify();
  const VerifyResult qr = qv.verify();
  EXPECT_EQ(pr.status, VerifyStatus::kSafe);
  EXPECT_EQ(qr.status, VerifyStatus::kSafe);
  // Identical samples + identical basis ⇒ identical LP candidate.
  ASSERT_TRUE(pr.poly_generator && qr.generator);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(pr.poly_generator->coeffs()[k], qr.generator->coeffs()[k], 1e-9);
  }
}

TEST(PolyVerifier, CertificateInvariantUnderSimulation) {
  expr::ExprPool pool;
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 20, 2);
  PolyVerifierOptions opts;
  opts.max_degree = 4;
  const BarrierProblem problem = dubins_problem(pool, controller);
  PolyBarrierVerifier verifier(problem, opts);
  const PolyVerifyResult r = verifier.verify();
  ASSERT_TRUE(r.safe()) << verify_status_name(r.status);
  for (const Vector& v : problem.initial_set.vertices()) {
    ode::IntegrateOptions iopts;
    iopts.step = 0.02;
    iopts.t_end = 25.0;
    const ode::Trace t = integrate_rk4(problem.sim_field, v, iopts);
    for (std::size_t i = 0; i < t.size(); ++i) {
      ASSERT_LE(r.poly_generator->value(t.state(i)), r.level + 1e-6);
      ASSERT_TRUE(problem.safe_rect.contains(t.state(i)));
    }
  }
}

}  // namespace
}  // namespace bcert::core
