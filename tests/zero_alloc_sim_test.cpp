// Tests for the zero-allocation simulation pipeline: the in-place
// linalg kernels, the workspace-based integrators (bit-for-bit against
// the allocating API), the in-place NN forward pass, and the
// thread-count determinism of the falsifier and CMA-ES.
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "src/cmaes/cmaes.h"
#include "src/core/falsifier.h"
#include "src/dubins/error_dynamics.h"
#include "src/dubins/training.h"
#include "src/linalg/matrix.h"
#include "src/linalg/vector.h"
#include "src/nn/network.h"
#include "src/ode/integrator.h"

namespace bcert {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(InPlaceKernels, AxpyScaleAddCopyInto) {
  const Vector x{1.0, -2.0, 3.0};
  Vector y{0.5, 0.5, 0.5};
  linalg::axpy(2.0, x, y);
  EXPECT_EQ(y, (Vector{2.5, -3.5, 6.5}));

  Vector out;
  linalg::scale_add(out, x, -1.0, y);
  EXPECT_EQ(out, x + (-1.0) * y);

  Vector copy{9.0};
  linalg::copy_into(x, copy);
  EXPECT_EQ(copy, x);
}

TEST(InPlaceKernels, MatvecMatchesOperator) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  Matrix a(5, 7);
  Vector x(7);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 7; ++c) a(r, c) = d(rng);
  for (std::size_t c = 0; c < 7; ++c) x[c] = d(rng);
  Vector out;
  linalg::matvec(a, x, out);
  EXPECT_EQ(out, a * x);
}

nn::FeedforwardNet random_net(std::vector<std::size_t> sizes, unsigned seed) {
  std::vector<nn::Activation> acts(sizes.size() - 1, nn::Activation::kTanh);
  nn::FeedforwardNet net(sizes, acts);
  std::mt19937 rng(seed);
  net.randomize(rng);
  return net;
}

TEST(InPlaceForward, BitIdenticalToForward) {
  // Two hidden layers exercise the ping-pong scratch path.
  const nn::FeedforwardNet net = random_net({2, 8, 8, 1}, 11);
  nn::ForwardScratch scratch;
  std::mt19937 rng(4);
  std::uniform_real_distribution<double> d(-3.0, 3.0);
  Vector out;
  for (int i = 0; i < 50; ++i) {
    const Vector x{d(rng), d(rng)};
    net.forward_inplace(x, out, scratch);
    EXPECT_EQ(out, net.forward(x));
  }
}

dubins::ErrorModel test_model() { return {/*velocity=*/1.0, /*theta_r=*/0.0}; }

TEST(ZeroAllocIntegrator, Rk4TraceBitIdenticalOnDubinsClosedLoop) {
  const nn::FeedforwardNet net = random_net({2, 10, 1}, 5);
  const ode::VectorField legacy = dubins::closed_loop_field(test_model(), net);
  const ode::VectorFieldInPlace fast =
      dubins::closed_loop_field_inplace(test_model(), net);

  ode::IntegrateOptions opts;
  opts.step = 0.01;
  opts.t_end = 10.0;
  const Vector x0{3.0, 0.5};
  const ode::Trace a = integrate_rk4(legacy, x0, opts);
  const ode::Trace b = integrate_rk4(fast, x0, opts);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.time(i), b.time(i));
    EXPECT_EQ(a.state(i), b.state(i)) << "step " << i;
  }
}

TEST(ZeroAllocIntegrator, Rkf45TraceBitIdenticalOnDubinsClosedLoop) {
  const nn::FeedforwardNet net = random_net({2, 10, 1}, 6);
  const ode::VectorField legacy = dubins::closed_loop_field(test_model(), net);
  const ode::VectorFieldInPlace fast =
      dubins::closed_loop_field_inplace(test_model(), net);

  ode::IntegrateOptions opts;
  opts.step = 0.01;
  opts.t_end = 5.0;
  const Vector x0{2.0, -0.3};
  const ode::Trace a = integrate_rkf45(legacy, x0, opts);
  const ode::Trace b = integrate_rkf45(fast, x0, opts);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.time(i), b.time(i));
    EXPECT_EQ(a.state(i), b.state(i)) << "step " << i;
  }
}

TEST(ZeroAllocIntegrator, Rk4StepInplaceMatchesRk4Step) {
  const ode::VectorField f = [](const Vector& x) {
    return Vector{x[1], -std::sin(x[0])};
  };
  const ode::VectorFieldInPlace fi = [](const Vector& x, Vector& dx) {
    dx.resize(2);
    dx[0] = x[1];
    dx[1] = -std::sin(x[0]);
  };
  ode::RkScratch scratch;
  Vector out;
  const Vector x{0.7, -0.2};
  ode::rk4_step_inplace(fi, x, 0.01, out, scratch);
  EXPECT_EQ(out, ode::rk4_step(f, x, 0.01));
}

core::BarrierProblem small_problem(expr::ExprPool& pool,
                                   const nn::FeedforwardNet& net) {
  const dubins::ErrorModel model = test_model();
  core::BarrierProblem p;
  p.pool = &pool;
  p.sim_field = dubins::closed_loop_field(model, net);
  p.sim_field_factory = [model, net] {
    return dubins::closed_loop_field_inplace(model, net);
  };
  p.sym_field = dubins::closed_loop_field_expr(model, net, pool);
  p.initial_set = {{-1.0, -0.2}, {1.0, 0.2}};
  p.safe_rect = {{-5.0, -1.5}, {5.0, 1.5}};
  return p;
}

TEST(Determinism, FalsifierByteIdenticalAcrossThreadCounts) {
  const nn::FeedforwardNet net =
      dubins::distill_controller(dubins::proportional_teacher(), 10, 42);

  core::FalsifierOptions base;
  base.random_trials = 24;
  base.cmaes_iterations = 4;
  base.cmaes_population = 8;
  base.trace_duration = 4.0;
  base.seed = 11;

  std::optional<core::FalsificationResult> reference;
  for (int threads : {1, 2, 4}) {
    expr::ExprPool pool;
    core::FalsifierOptions opts = base;
    opts.threads = threads;
    core::Falsifier falsifier(small_problem(pool, net), opts);
    const core::FalsificationResult r = falsifier.search();
    if (!reference) {
      reference = r;
      continue;
    }
    EXPECT_EQ(r.falsified, reference->falsified) << threads;
    EXPECT_EQ(r.robustness, reference->robustness) << threads;
    EXPECT_EQ(r.initial_state, reference->initial_state) << threads;
    EXPECT_EQ(r.simulations, reference->simulations) << threads;
    ASSERT_EQ(r.trace.size(), reference->trace.size()) << threads;
    for (std::size_t i = 0; i < r.trace.size(); ++i) {
      EXPECT_EQ(r.trace.state(i), reference->trace.state(i));
    }
  }
}

TEST(Determinism, CmaesByteIdenticalAcrossEvalThreads) {
  // Thread-safe multimodal objective.
  const cmaes::ObjectiveFn objective = [](const Vector& v) {
    double s = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      s += v[i] * v[i] + std::sin(3.0 * v[i]);
    }
    return s;
  };
  const Vector x0{1.5, -0.8, 0.3};

  std::optional<cmaes::CmaesResult> reference;
  for (int threads : {1, 2, 4}) {
    cmaes::CmaesOptions opts;
    opts.max_iterations = 40;
    opts.seed = 9;
    opts.eval_threads = threads;
    const cmaes::CmaesResult r = cmaes_minimize(objective, x0, opts);
    if (!reference) {
      reference = r;
      continue;
    }
    EXPECT_EQ(r.best_fitness, reference->best_fitness) << threads;
    EXPECT_EQ(r.best_x, reference->best_x) << threads;
    EXPECT_EQ(r.iterations, reference->iterations) << threads;
    ASSERT_EQ(r.fitness_history.size(), reference->fitness_history.size());
    for (std::size_t i = 0; i < r.fitness_history.size(); ++i) {
      EXPECT_EQ(r.fitness_history[i], reference->fitness_history[i]);
    }
  }
}

TEST(Determinism, TrainingByteIdenticalAcrossThreadCounts) {
  dubins::TrainOptions opts;
  opts.hidden_neurons = 4;
  opts.iterations = 3;
  opts.population = 8;
  opts.sim.steps = 120;
  opts.seed = 21;

  std::optional<dubins::TrainResult> reference;
  for (int threads : {1, 4}) {
    opts.threads = threads;
    const dubins::TrainResult r = train_controller(
        dubins::PiecewiseLinearPath({{0.0, 0.0}, {10.0, 5.0}, {20.0, 5.0}}),
        opts);
    if (!reference) {
      reference = r;
      continue;
    }
    EXPECT_EQ(r.best_cost, reference->best_cost);
    EXPECT_EQ(r.controller.parameters(), reference->controller.parameters());
  }
}

}  // namespace
}  // namespace bcert
