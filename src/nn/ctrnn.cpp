#include "src/nn/ctrnn.h"

#include <stdexcept>

namespace bcert::nn {

Ctrnn::Ctrnn(std::size_t inputs, std::size_t hidden, std::size_t outputs,
             double tau, Activation act)
    : wx_(hidden, inputs),
      wh_(hidden, hidden),
      bias_(hidden),
      wo_(outputs, hidden),
      out_bias_(outputs),
      tau_(tau),
      act_(act) {
  if (tau <= 0.0) throw std::invalid_argument("Ctrnn: tau must be > 0");
}

linalg::Vector Ctrnn::output(const linalg::Vector& h) const {
  return wo_ * h + out_bias_;
}

void Ctrnn::output_inplace(const linalg::Vector& h, linalg::Vector& u) const {
  linalg::matvec(wo_, h, u);
  for (std::size_t i = 0; i < u.size(); ++i) u[i] += out_bias_[i];
}

void Ctrnn::hidden_derivative_inplace(const linalg::Vector& y,
                                      const linalg::Vector& h,
                                      linalg::Vector& dh,
                                      Scratch& scratch) const {
  linalg::matvec(wx_, y, scratch.pre);
  linalg::matvec(wh_, h, scratch.rec);
  dh.resize(num_hidden());
  for (std::size_t i = 0; i < dh.size(); ++i) {
    const double pre = scratch.pre[i] + scratch.rec[i] + bias_[i];
    dh[i] = (-h[i] + apply(act_, pre)) / tau_;
  }
}

std::size_t Ctrnn::num_params() const {
  return wx_.rows() * wx_.cols() + wh_.rows() * wh_.cols() + bias_.size() +
         wo_.rows() * wo_.cols() + out_bias_.size();
}

linalg::Vector Ctrnn::parameters() const {
  linalg::Vector params(num_params());
  std::size_t k = 0;
  for (std::size_t r = 0; r < wx_.rows(); ++r)
    for (std::size_t c = 0; c < wx_.cols(); ++c) params[k++] = wx_(r, c);
  for (std::size_t r = 0; r < wh_.rows(); ++r)
    for (std::size_t c = 0; c < wh_.cols(); ++c) params[k++] = wh_(r, c);
  for (std::size_t i = 0; i < bias_.size(); ++i) params[k++] = bias_[i];
  for (std::size_t r = 0; r < wo_.rows(); ++r)
    for (std::size_t c = 0; c < wo_.cols(); ++c) params[k++] = wo_(r, c);
  for (std::size_t i = 0; i < out_bias_.size(); ++i) {
    params[k++] = out_bias_[i];
  }
  return params;
}

void Ctrnn::set_parameters(const linalg::Vector& params) {
  if (params.size() != num_params()) {
    throw std::invalid_argument("Ctrnn::set_parameters: size mismatch");
  }
  std::size_t k = 0;
  for (std::size_t r = 0; r < wx_.rows(); ++r)
    for (std::size_t c = 0; c < wx_.cols(); ++c) wx_(r, c) = params[k++];
  for (std::size_t r = 0; r < wh_.rows(); ++r)
    for (std::size_t c = 0; c < wh_.cols(); ++c) wh_(r, c) = params[k++];
  for (std::size_t i = 0; i < bias_.size(); ++i) bias_[i] = params[k++];
  for (std::size_t r = 0; r < wo_.rows(); ++r)
    for (std::size_t c = 0; c < wo_.cols(); ++c) wo_(r, c) = params[k++];
  for (std::size_t i = 0; i < out_bias_.size(); ++i) {
    out_bias_[i] = params[k++];
  }
}

linalg::Vector Ctrnn::hidden_derivative(const linalg::Vector& y,
                                        const linalg::Vector& h) const {
  linalg::Vector pre = wx_ * y + wh_ * h + bias_;
  linalg::Vector dh(num_hidden());
  for (std::size_t i = 0; i < dh.size(); ++i) {
    dh[i] = (-h[i] + apply(act_, pre[i])) / tau_;
  }
  return dh;
}

std::vector<expr::ExprId> Ctrnn::output_expr(
    expr::ExprPool& pool, const std::vector<expr::ExprId>& h) const {
  if (h.size() != num_hidden()) {
    throw std::invalid_argument("Ctrnn::output_expr: hidden count");
  }
  std::vector<expr::ExprId> out(num_outputs());
  for (std::size_t j = 0; j < num_outputs(); ++j) {
    std::vector<double> coeffs(num_hidden());
    for (std::size_t i = 0; i < num_hidden(); ++i) coeffs[i] = wo_(j, i);
    out[j] = pool.affine(coeffs, h, out_bias_[j]);
  }
  return out;
}

std::vector<expr::ExprId> Ctrnn::hidden_derivative_expr(
    expr::ExprPool& pool, const std::vector<expr::ExprId>& y,
    const std::vector<expr::ExprId>& h) const {
  if (y.size() != num_inputs() || h.size() != num_hidden()) {
    throw std::invalid_argument("Ctrnn::hidden_derivative_expr: shape");
  }
  std::vector<expr::ExprId> dh(num_hidden());
  for (std::size_t i = 0; i < num_hidden(); ++i) {
    std::vector<double> coeffs;
    std::vector<expr::ExprId> terms;
    coeffs.reserve(num_inputs() + num_hidden());
    terms.reserve(num_inputs() + num_hidden());
    for (std::size_t c = 0; c < num_inputs(); ++c) {
      coeffs.push_back(wx_(i, c));
      terms.push_back(y[c]);
    }
    for (std::size_t c = 0; c < num_hidden(); ++c) {
      coeffs.push_back(wh_(i, c));
      terms.push_back(h[c]);
    }
    const expr::ExprId pre = pool.affine(coeffs, terms, bias_[i]);
    const expr::ExprId activated = apply(act_, pool, pre);
    dh[i] = pool.div(pool.sub(activated, h[i]), pool.constant(tau_));
  }
  return dh;
}

void Ctrnn::randomize(std::mt19937& rng, double scale) {
  std::normal_distribution<double> normal(0.0, 1.0);
  const double wx_std =
      scale / std::sqrt(static_cast<double>(std::max<std::size_t>(
                  num_inputs(), 1)));
  const double wh_std =
      scale / std::sqrt(static_cast<double>(std::max<std::size_t>(
                  num_hidden(), 1)));
  for (std::size_t r = 0; r < wx_.rows(); ++r)
    for (std::size_t c = 0; c < wx_.cols(); ++c)
      wx_(r, c) = wx_std * normal(rng);
  for (std::size_t r = 0; r < wh_.rows(); ++r)
    for (std::size_t c = 0; c < wh_.cols(); ++c)
      wh_(r, c) = wh_std * normal(rng);
  for (std::size_t i = 0; i < bias_.size(); ++i)
    bias_[i] = 0.1 * scale * normal(rng);
  for (std::size_t r = 0; r < wo_.rows(); ++r)
    for (std::size_t c = 0; c < wo_.cols(); ++c)
      wo_(r, c) = wh_std * normal(rng);
  for (std::size_t i = 0; i < out_bias_.size(); ++i)
    out_bias_[i] = 0.1 * scale * normal(rng);
}

Ctrnn Ctrnn::lagged_policy(const linalg::Vector& gains, double tau) {
  Ctrnn net(gains.size(), 1, 1, tau, Activation::kTanh);
  for (std::size_t c = 0; c < gains.size(); ++c) net.wx_(0, c) = gains[c];
  net.wo_(0, 0) = 1.0;
  return net;
}

}  // namespace bcert::nn
