#include "src/dubins/path.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bcert::dubins {

double wrap_angle(double a) {
  constexpr double kPi = 3.14159265358979323846;
  a = std::fmod(a + kPi, 2.0 * kPi);
  if (a <= 0.0) a += 2.0 * kPi;
  return a - kPi;
}

double heading_of(double dx, double dy) { return std::atan2(dx, dy); }

PiecewiseLinearPath::PiecewiseLinearPath(std::vector<Point2> waypoints) {
  waypoints_.reserve(waypoints.size());
  for (const Point2& p : waypoints) {
    if (!waypoints_.empty()) {
      const Point2& last = waypoints_.back();
      if (std::hypot(p.x - last.x, p.y - last.y) < 1e-12) continue;
    }
    waypoints_.push_back(p);
  }
  if (waypoints_.size() < 2) {
    throw std::invalid_argument(
        "PiecewiseLinearPath: need >= 2 distinct waypoints");
  }
}

double PiecewiseLinearPath::length() const {
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < waypoints_.size(); ++i) {
    acc += std::hypot(waypoints_[i + 1].x - waypoints_[i].x,
                      waypoints_[i + 1].y - waypoints_[i].y);
  }
  return acc;
}

PathError PiecewiseLinearPath::error(double xv, double yv,
                                     double theta_v) const {
  PathError best;
  double best_dist2 = std::numeric_limits<double>::infinity();

  for (std::size_t i = 0; i + 1 < waypoints_.size(); ++i) {
    const Point2& p0 = waypoints_[i];
    const Point2& p1 = waypoints_[i + 1];
    const double sx = p1.x - p0.x, sy = p1.y - p0.y;
    const double len2 = sx * sx + sy * sy;
    // Projection parameter clamped to the segment.
    double t = ((xv - p0.x) * sx + (yv - p0.y) * sy) / len2;
    t = std::clamp(t, 0.0, 1.0);
    const double nx = p0.x + t * sx, ny = p0.y + t * sy;
    const double dx = xv - nx, dy = yv - ny;
    const double dist2 = dx * dx + dy * dy;
    if (dist2 < best_dist2) {
      best_dist2 = dist2;
      best.nearest = {nx, ny};
      best.segment = i;
      best.tangent_angle = heading_of(sx, sy);
      // Signed distance: positive when the vehicle is on the left of the
      // travel direction. With direction d̂ = (sx, sy)/|s| and offset
      // v = (dx, dy), left is the cross product d̂ × v̂ > 0 in the
      // standard (x right, y up) frame... in the paper's clockwise-from-
      // +y convention "left of travel" is still the same geometric side;
      // cross = sx*dy - sy*dx gives positive for counter-clockwise
      // (left) offsets.
      const double cross = sx * dy - sy * dx;
      best.distance = (cross >= 0.0 ? 1.0 : -1.0) * std::sqrt(dist2);
    }
  }
  best.angle = wrap_angle(best.tangent_angle - theta_v);
  return best;
}

PiecewiseLinearPath PiecewiseLinearPath::figure4_path() {
  // Shape mirrors the training path of Figure 4: starts near the origin,
  // heads up-right, bends left, continues up, then turns right —
  // a few gentle piecewise-linear legs across a ~200x100 region.
  return PiecewiseLinearPath({{0.0, 0.0},
                              {30.0, 20.0},
                              {60.0, 25.0},
                              {90.0, 45.0},
                              {100.0, 75.0},
                              {120.0, 90.0}});
}

PiecewiseLinearPath PiecewiseLinearPath::straight(double theta_r,
                                                  double length) {
  const double dx = std::sin(theta_r), dy = std::cos(theta_r);
  return PiecewiseLinearPath(
      {{-0.5 * length * dx, -0.5 * length * dy},
       {0.5 * length * dx, 0.5 * length * dy}});
}

}  // namespace bcert::dubins
