// Trains the paper's NN steering controller (§4.2) by CMA-ES direct
// policy search, reports the training evolution, validates the result on
// a fresh path (the paper's informal validation step), and saves the
// weights for use by verify_dubins.
//
// Usage: train_dubins_controller [hidden_neurons] [iterations] [out_file]
// Defaults: 10 neurons, 80 iterations, dubins_controller.net
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "src/dubins/training.h"
#include "src/dubins/vehicle.h"

int main(int argc, char** argv) {
  using namespace bcert;

  const std::size_t hidden = argc > 1 ? std::stoul(argv[1]) : 10;
  const int iterations = argc > 2 ? std::stoi(argv[2]) : 80;
  const std::string out = argc > 3 ? argv[3] : "dubins_controller.net";

  // Training path: piecewise linear with a few turns (Figure 4 shape).
  const dubins::PiecewiseLinearPath path({{0.0, 0.0},
                                          {12.0, 8.0},
                                          {24.0, 10.0},
                                          {36.0, 18.0},
                                          {40.0, 30.0},
                                          {48.0, 36.0}});

  dubins::TrainOptions opts;
  opts.hidden_neurons = hidden;
  opts.iterations = iterations;
  opts.population = 152;  // paper §4.2
  opts.sim.velocity = 1.0;
  opts.sim.dt = 0.1;
  opts.sim.steps = 700;
  // Rollouts from offsets across the verification domain, so the policy
  // is well-behaved everywhere a certificate must hold (see DESIGN.md).
  opts.start_offsets = dubins::verification_offsets();
  opts.weights.angle = 1e3;  // rescaled to this geometry

  std::printf("training %zu-neuron controller (%d iterations, population "
              "%zu)...\n", hidden, iterations, opts.population);
  int shown = 0;
  const dubins::TrainResult result = train_controller(
      path, opts, [&](const dubins::TrainingSnapshot& snap) {
        if (snap.iteration % 10 == 0 || snap.iteration == iterations - 1) {
          std::printf("  iter %3d   best cost %.1f\n", snap.iteration,
                      snap.best_cost);
          ++shown;
        }
      });
  std::printf("final cost: %.1f\n", result.best_cost);

  // Informal validation on a path the optimizer never saw (§4.2 end).
  const dubins::PiecewiseLinearPath fresh({{0.0, 0.0},
                                           {10.0, -6.0},
                                           {22.0, -8.0},
                                           {30.0, 0.0},
                                           {42.0, 6.0}});
  dubins::SimOptions sim = opts.sim;
  const dubins::ClosedLoopTrace t = simulate_path_following(
      fresh, dubins::as_controller(result.controller), {2.0, 0.0, 0.5}, sim);
  double mean_d = 0.0, max_d = 0.0;
  for (const auto& s : t.samples) {
    mean_d += std::fabs(s.error.distance);
    max_d = std::max(max_d, std::fabs(s.error.distance));
  }
  mean_d /= static_cast<double>(t.size());
  std::printf("validation on a fresh path: mean |d_err| = %.3f, max "
              "|d_err| = %.3f\n", mean_d, max_d);

  std::ofstream os(out);
  result.controller.save(os);
  std::printf("controller saved to %s (%zu parameters)\n", out.c_str(),
              result.controller.num_params());
  std::printf("next: ./verify_dubins %s\n", out.c_str());
  return 0;
}
