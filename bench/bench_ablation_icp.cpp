// Ablation A: sensitivity of the SMT-(5) check to the ICP precision δ
// and the condition-(5) slack γ.
//
// DESIGN.md calls out two solver-level design choices this ablation
// probes: (i) δ controls when branch-and-prune stops splitting — too
// coarse yields spurious δ-SAT answers (interval slack masquerading as a
// counterexample), too fine wastes time; (ii) γ trades strictness of the
// decrease condition against query hardness near the zero-level set of
// ∇W·f.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace bcert;

  expr::ExprPool pool;
  const nn::FeedforwardNet controller =
      dubins::distill_controller(dubins::proportional_teacher(), 40, 7);
  const core::BarrierProblem problem = bench::make_problem(pool, controller);
  core::VerifierOptions base;
  base.adaptive_delta = false;  // measure raw single-δ behaviour
  core::BarrierPipeline<core::QuadraticForm> verifier(problem, base);

  // A fixed valid generator (synthesized once at default settings).
  std::vector<core::FieldSample> samples;
  for (const linalg::Vector& x0 : verifier.random_initial_states(10, 1)) {
    const auto s = verifier.simulate_samples(x0);
    samples.insert(samples.end(), s.begin(), s.end());
  }
  const core::SynthesisResult synth = synthesize_candidate(samples, 2);
  if (!synth.feasible) {
    std::printf("unexpected: LP infeasible\n");
    return 1;
  }

  std::printf("# Ablation A: SMT-(5) verdict/time vs ICP delta "
              "(40-neuron controller, gamma = 1e-6)\n");
  std::printf("# %10s %12s %10s %12s\n", "delta", "verdict", "time(s)",
              "boxes");
  for (const double delta : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5}) {
    core::VerifierOptions opts = base;
    opts.icp.delta = delta;
    core::BarrierPipeline<core::QuadraticForm> v(problem, opts);
    const smt::IcpResult r = v.check_decrease(synth.candidate);
    std::printf("  %10.0e %12s %10.3f %12llu\n", delta,
                sat_result_name(r.verdict), r.stats.solve_time_s,
                static_cast<unsigned long long>(r.stats.boxes_processed));
    std::fflush(stdout);
  }

  std::printf("#\n# gamma sweep (delta = 1e-4): larger gamma weakens the "
              "requirement\n");
  std::printf("# %10s %12s %10s %12s\n", "gamma", "verdict", "time(s)",
              "boxes");
  for (const double gamma : {1e-9, 1e-6, 1e-3, 1e-1}) {
    core::VerifierOptions opts = base;
    opts.icp.delta = 1e-4;
    opts.gamma = gamma;
    core::BarrierPipeline<core::QuadraticForm> v(problem, opts);
    const smt::IcpResult r = v.check_decrease(synth.candidate);
    std::printf("  %10.0e %12s %10.3f %12llu\n", gamma,
                sat_result_name(r.verdict), r.stats.solve_time_s,
                static_cast<unsigned long long>(r.stats.boxes_processed));
    std::fflush(stdout);
  }
  std::printf("#\n# expected: coarse delta -> spurious delta-SAT; fine "
              "delta -> UNSAT, more boxes.\n");
  return 0;
}
