#pragma once
/// \file matrix.h
/// \brief Dense row-major matrix with the handful of operations the
/// verification pipeline needs (products, transpose, quadratic forms).

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "src/linalg/vector.h"

namespace bcert::linalg {

/// Dense row-major matrix of doubles with value semantics.
class Matrix {
 public:
  /// Creates an empty (0 x 0) matrix.
  Matrix() = default;

  /// Creates a \p rows x \p cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a matrix from nested initializer lists (row major).
  /// Throws std::invalid_argument on ragged rows.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size \p n.
  static Matrix identity(std::size_t n);

  /// Diagonal matrix from the entries of \p d.
  static Matrix diagonal(const Vector& d);

  /// Number of rows.
  std::size_t rows() const { return rows_; }
  /// Number of columns.
  std::size_t cols() const { return cols_; }
  /// True when the matrix holds no elements.
  bool empty() const { return data_.empty(); }

  /// Unchecked element access at row \p r, column \p c.
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  /// Unchecked element access at row \p r, column \p c (const).
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  /// Bounds-checked access (const); throws std::out_of_range.
  double at(std::size_t r, std::size_t c) const;

  /// Pointer to the contiguous row-major storage.
  double* data() { return data_.data(); }
  /// Pointer to the contiguous row-major storage (const).
  const double* data() const { return data_.data(); }

  /// Element-wise sum; dimensions must match (throws otherwise).
  Matrix& operator+=(const Matrix& rhs);
  /// Element-wise difference; dimensions must match (throws otherwise).
  Matrix& operator-=(const Matrix& rhs);
  /// Scales every element by \p s.
  Matrix& operator*=(double s);

  /// Returns the transpose as a new matrix.
  Matrix transposed() const;

  /// Extracts row \p r as a vector.
  Vector row(std::size_t r) const;
  /// Extracts column \p c as a vector.
  Vector col(std::size_t c) const;

  /// Sets row \p r from \p v (dimension must match cols()).
  void set_row(std::size_t r, const Vector& v);
  /// Sets column \p c from \p v (dimension must match rows()).
  void set_col(std::size_t c, const Vector& v);

  /// Frobenius norm.
  double norm_frobenius() const;

  /// Largest absolute entry.
  double norm_max() const;

  /// True when the matrix equals its transpose within \p tol (absolute).
  bool is_symmetric(double tol = 1e-12) const;

  /// Exact element-wise equality (dimensions must match too).
  bool operator==(const Matrix& rhs) const {
    return rows_ == rhs.rows_ && cols_ == rhs.cols_ && data_ == rhs.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Element-wise sum; dimensions must match.
Matrix operator+(Matrix lhs, const Matrix& rhs);
/// Element-wise difference; dimensions must match.
Matrix operator-(Matrix lhs, const Matrix& rhs);
/// Scales \p lhs by \p s.
Matrix operator*(Matrix lhs, double s);
/// Scales \p rhs by \p s.
Matrix operator*(double s, Matrix rhs);

/// Matrix-matrix product; inner dimensions must match.
Matrix operator*(const Matrix& a, const Matrix& b);

/// Matrix-vector product.
Vector operator*(const Matrix& a, const Vector& x);

/// Allocation-free matrix-vector product: out = A·x, bit-identical to
/// operator*. `out` may not alias x; it is resized to a.rows().
void matvec(const Matrix& a, const Vector& x, Vector& out);

/// Computes xᵀ A y (A must be rows=|x|, cols=|y|).
double quadratic_form(const Vector& x, const Matrix& a, const Vector& y);

/// Outer product x yᵀ.
Matrix outer(const Vector& x, const Vector& y);

/// Streams the matrix row by row to \p os.
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace bcert::linalg
