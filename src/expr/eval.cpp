#include "src/expr/eval.h"

#include <cmath>
#include <stdexcept>

namespace bcert::expr {

using interval::Interval;

Evaluator::Evaluator(const ExprPool& pool, std::vector<ExprId> roots)
    : pool_(&pool), roots_(std::move(roots)) {
  position_.assign(pool.size(), npos);
  schedule_.reserve(256);

  // Iterative DFS post-order over the union of all roots.
  std::vector<std::pair<ExprId, bool>> stack;
  for (ExprId r : roots_) stack.push_back({r, false});
  std::vector<bool> visited(pool.size(), false);
  while (!stack.empty()) {
    auto [cur, expanded] = stack.back();
    stack.pop_back();
    if (visited[cur]) continue;
    const Node& n = pool.node(cur);
    if (!expanded) {
      stack.push_back({cur, true});
      if (n.a != kNoExpr && !visited[n.a]) stack.push_back({n.a, false});
      if (n.b != kNoExpr && !visited[n.b]) stack.push_back({n.b, false});
      continue;
    }
    visited[cur] = true;
    position_[cur] = schedule_.size();
    schedule_.push_back(cur);
  }

  root_pos_.reserve(roots_.size());
  for (ExprId r : roots_) root_pos_.push_back(position_[r]);
}

std::size_t Evaluator::position_of(ExprId id) const {
  return id < position_.size() ? position_[id] : npos;
}

std::vector<double> Evaluator::eval(const linalg::Vector& x) const {
  std::vector<double> vals(schedule_.size());
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const Node& n = pool_->node(schedule_[i]);
    const double a = n.a != kNoExpr ? vals[position_[n.a]] : 0.0;
    const double b = n.b != kNoExpr ? vals[position_[n.b]] : 0.0;
    double v = 0.0;
    switch (n.op) {
      case Op::kConst: v = n.value; break;
      case Op::kVar: v = x[static_cast<std::size_t>(n.index)]; break;
      case Op::kAdd: v = a + b; break;
      case Op::kSub: v = a - b; break;
      case Op::kMul: v = a * b; break;
      case Op::kDiv: v = a / b; break;
      case Op::kNeg: v = -a; break;
      case Op::kSin: v = std::sin(a); break;
      case Op::kCos: v = std::cos(a); break;
      case Op::kTan: v = std::tan(a); break;
      case Op::kAtan: v = std::atan(a); break;
      case Op::kExp: v = std::exp(a); break;
      case Op::kLog: v = std::log(a); break;
      case Op::kSqrt: v = std::sqrt(a); break;
      case Op::kSqr: v = a * a; break;
      case Op::kPow: v = std::pow(a, n.index); break;
      case Op::kTanh: v = std::tanh(a); break;
      case Op::kSigmoid: v = 1.0 / (1.0 + std::exp(-a)); break;
      case Op::kRelu: v = std::max(a, 0.0); break;
      case Op::kAbs: v = std::fabs(a); break;
      case Op::kMin: v = std::min(a, b); break;
      case Op::kMax: v = std::max(a, b); break;
    }
    vals[i] = v;
  }
  std::vector<double> out(roots_.size());
  for (std::size_t i = 0; i < roots_.size(); ++i) out[i] = vals[root_pos_[i]];
  return out;
}

double Evaluator::eval_root(std::size_t root_index,
                            const linalg::Vector& x) const {
  return eval(x)[root_index];
}

Interval apply_interval_op(const Node& n, const Interval& a,
                           const Interval& b) {
  if (n.op == Op::kConst) return Interval(n.value);
  if (n.op == Op::kVar) {
    throw std::logic_error("apply_interval_op: kVar must be handled above");
  }
  return apply_interval_op(n.op, n.index, a, b);
}

void Evaluator::eval_forward(const interval::Box& box,
                             std::vector<Interval>& values) const {
  values.resize(schedule_.size());
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const Node& n = pool_->node(schedule_[i]);
    if (n.op == Op::kVar) {
      values[i] = box[static_cast<std::size_t>(n.index)];
      continue;
    }
    const Interval a = n.a != kNoExpr ? values[position_[n.a]] : Interval();
    const Interval b = n.b != kNoExpr ? values[position_[n.b]] : Interval();
    values[i] = apply_interval_op(n, a, b);
  }
}

std::vector<Interval> Evaluator::eval(const interval::Box& box) const {
  std::vector<Interval> vals;
  eval_forward(box, vals);
  std::vector<Interval> out(roots_.size());
  for (std::size_t i = 0; i < roots_.size(); ++i) out[i] = vals[root_pos_[i]];
  return out;
}

}  // namespace bcert::expr
