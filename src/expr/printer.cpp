#include "src/expr/printer.h"

#include <sstream>
#include <unordered_map>

namespace bcert::expr {

namespace {

class Printer {
 public:
  Printer(const ExprPool& pool, const std::vector<std::string>& names)
      : pool_(pool), names_(names) {}

  std::string print(ExprId id) {
    auto it = memo_.find(id);
    if (it != memo_.end()) return it->second;
    std::string s = render(id);
    memo_.emplace(id, s);
    return s;
  }

 private:
  std::string var_name(std::int32_t index) const {
    const auto i = static_cast<std::size_t>(index);
    if (i < names_.size()) return names_[i];
    return "x" + std::to_string(index);
  }

  std::string paren(ExprId id) {
    const Node& n = pool_.node(id);
    const bool atom = n.op == Op::kConst || n.op == Op::kVar ||
                      (!is_binary(n.op) && n.op != Op::kNeg);
    const std::string s = print(id);
    return atom ? s : "(" + s + ")";
  }

  std::string render(ExprId id) {
    const Node& n = pool_.node(id);
    std::ostringstream os;
    switch (n.op) {
      case Op::kConst:
        os << n.value;
        return os.str();
      case Op::kVar:
        return var_name(n.index);
      case Op::kAdd:
        return print(n.a) + " + " + print(n.b);
      case Op::kSub:
        return print(n.a) + " - " + paren(n.b);
      case Op::kMul:
        return paren(n.a) + "*" + paren(n.b);
      case Op::kDiv:
        return paren(n.a) + "/" + paren(n.b);
      case Op::kNeg:
        return "-" + paren(n.a);
      case Op::kSqr:
        return paren(n.a) + "^2";
      case Op::kPow:
        return paren(n.a) + "^" + std::to_string(n.index);
      case Op::kMin:
        return "min(" + print(n.a) + ", " + print(n.b) + ")";
      case Op::kMax:
        return "max(" + print(n.a) + ", " + print(n.b) + ")";
      default:
        return std::string(op_name(n.op)) + "(" + print(n.a) + ")";
    }
  }

  const ExprPool& pool_;
  const std::vector<std::string>& names_;
  std::unordered_map<ExprId, std::string> memo_;
};

}  // namespace

std::string to_string(const ExprPool& pool, ExprId id,
                      const std::vector<std::string>& var_names) {
  Printer p(pool, var_names);
  return p.print(id);
}

}  // namespace bcert::expr
