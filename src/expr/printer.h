#pragma once
/// \file printer.h
/// \brief Infix pretty-printing of expressions for logs and debugging.

#include <string>
#include <vector>

#include "src/expr/expr.h"

namespace bcert::expr {

/// Renders \p id as an infix string. Variables print as `x0`, `x1`, ...
/// unless \p var_names supplies custom names.
std::string to_string(const ExprPool& pool, ExprId id,
                      const std::vector<std::string>& var_names = {});

}  // namespace bcert::expr
