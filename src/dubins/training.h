#pragma once
/// \file training.h
/// \brief NN controller training by CMA-ES direct policy search (§4.2)
/// and factories for the controller suite of Table 1.

#include <functional>
#include <vector>

#include "src/cmaes/cmaes.h"
#include "src/dubins/path.h"
#include "src/dubins/vehicle.h"
#include "src/nn/network.h"

namespace bcert::dubins {

/// Weights of the paper's training cost
///   J = Σ_k (w_d d_err_k² + w_th θ_err_k² + w_u u_k²)
///       + w_end |(x_end, y_end) − (x_vN, y_vN)|².
struct CostWeights {
  double distance = 100.0;
  double angle = 1e5;
  double control = 100.0;
  double endpoint = 1e3;
};

/// Evaluates the paper's cost J for one closed-loop simulation.
double path_following_cost(const ClosedLoopTrace& trace,
                           const PiecewiseLinearPath& path,
                           const CostWeights& weights = {});

/// Training configuration (§4.2 defaults: 10 hidden neurons, 50
/// CMA-ES iterations, population 152).
struct TrainOptions {
  std::size_t hidden_neurons = 10;
  int iterations = 50;
  std::size_t population = 152;
  double sigma0 = 0.5;
  unsigned seed = 7;
  SimOptions sim;            ///< discrete-time simulation settings
  CostWeights weights;
  VehicleState initial;      ///< base start pose for training rollouts

  /// Initial (d_err, θ_err) offsets for the training rollouts; the cost
  /// is summed over one rollout per offset. The default single on-path
  /// rollout matches §4.2. Adding off-path offsets (see
  /// `verification_offsets()`) exposes the policy to the whole domain D,
  /// which a policy must handle before an *unbounded-time* certificate
  /// over D can exist — a controller trained only on-path can behave
  /// arbitrarily at large d_err.
  std::vector<std::pair<double, double>> start_offsets = {{0.0, 0.0}};

  /// CMA-ES population-evaluation parallelism: 0 = auto (BCERT_THREADS /
  /// hardware), 1 = sequential. Rollouts are independent, and results
  /// are byte-identical for a fixed seed at any thread count.
  int threads = 0;
};

/// Offsets spanning the verification domain of §4.3 (|d| ≤ 5,
/// |θ| ≤ π/2−ε) for robust training.
std::vector<std::pair<double, double>> verification_offsets();

/// Places the vehicle at lateral offset \p d_err and heading error
/// \p theta_err relative to \p path's first segment.
VehicleState offset_start(const PiecewiseLinearPath& path, double d_err,
                          double theta_err);

/// Per-iteration snapshot for Figure 4 reproduction.
struct TrainingSnapshot {
  int iteration = 0;
  double best_cost = 0.0;
  nn::FeedforwardNet controller;  ///< best-of-iteration policy
};

using SnapshotCallback = std::function<void(const TrainingSnapshot&)>;

/// Result of a policy search.
struct TrainResult {
  nn::FeedforwardNet controller;
  double best_cost = 0.0;
  std::vector<double> cost_history;
};

/// Trains a (2 → Nh → 1) all-tansig controller to follow \p path by
/// CMA-ES policy search on the paper's cost.
TrainResult train_controller(const PiecewiseLinearPath& path,
                             const TrainOptions& opts,
                             const SnapshotCallback& snapshot = {});

/// Wraps a network as a SteeringController closure.
SteeringController as_controller(const nn::FeedforwardNet& net);

/// A hand-derived smooth baseline steering law
///   u = tanh(k_d·d_err + k_th·θ_err)
/// used as the ELM teacher and as a sanity baseline in tests/benches.
SteeringController proportional_teacher(double k_d = 0.25, double k_th = 2.0);

/// Builds a controller with \p hidden neurons that is functionally
/// equivalent to \p teacher over the verification domain, by random-
/// feature least squares (see nn/elm.h for why this substitution is
/// faithful for the Table-1 scaling experiment).
nn::FeedforwardNet distill_controller(const SteeringController& teacher,
                                      std::size_t hidden, unsigned seed = 99,
                                      double d_range = 6.0,
                                      double theta_range = 1.7);

}  // namespace bcert::dubins
