#pragma once
/// \file json.h
/// \brief Strict, dependency-free JSON values and parsing for the
/// `bcertd` line protocol.
///
/// The daemon speaks newline-delimited JSON over a Unix-domain socket
/// (docs/ARCHITECTURE.md, "bcertd"). The writing half of that protocol
/// already exists — the report/campaign JSON emitters plus
/// `core::json_escape` — so this file supplies only the missing half: a
/// small immutable value type and a strict RFC-8259 parser. Strict
/// means: exactly one value per parse, no trailing input, no comments,
/// no unquoted keys, \uXXXX escapes decoded (surrogate pairs included),
/// and a recursion-depth cap so a hostile request cannot blow the
/// daemon's stack. Anything malformed yields `false` plus a position-
/// carrying error message — the server answers those with a protocol
/// error instead of dying.
///
/// Numbers are doubles (protocol counters fit in the 2^53 exact-integer
/// range; job ids and seeds stay well below it).

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace bcert::daemon {

/// One parsed JSON value. Immutable after parse; copy is deep.
class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  /// Object members in document order (duplicate keys: last one wins at
  /// lookup, all retained here).
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<Member>& members() const { return members_; }

  /// Member lookup (objects only; last duplicate wins); null otherwise.
  const JsonValue* find(const std::string& key) const;

  // Typed convenience lookups with defaults — the request decoder's
  // bread and butter. A present-but-wrong-type member returns the
  // default (the server validates types it actually cares about).
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

  /// Strictly parses \p text as exactly one JSON value (leading and
  /// trailing whitespace allowed, nothing else). On failure returns
  /// false and sets \p error to "offset N: why".
  static bool parse(const std::string& text, JsonValue& out,
                    std::string* error);

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

}  // namespace bcert::daemon
