#pragma once
/// \file interval.h
/// \brief Outward-rounded interval arithmetic.
///
/// Every operation returns an interval guaranteed to contain the exact
/// real-number image of its operands. Rounding is made safe by padding
/// each floating-point result outward with `std::nextafter` (a couple of
/// ulps generously covers the ≤1-ulp error of IEEE basic ops and the
/// few-ulp error of quality libm transcendentals). This is the soundness
/// bedrock of the δ-SAT solver: an UNSAT answer built on these bounds is
/// a proof over the reals.

#include <iosfwd>
#include <limits>

namespace bcert::interval {

/// Conservative enclosure of π: kPiLower < π < kPiUpper.
inline constexpr double kPiLower = 3.14159265358979267;
inline constexpr double kPiUpper = 3.14159265358979356;

/// Closed real interval [lo, hi]. The empty interval is represented by
/// lo > hi (canonically [+inf, -inf]).
class Interval {
 public:
  /// Default: the empty interval.
  constexpr Interval()
      : lo_(std::numeric_limits<double>::infinity()),
        hi_(-std::numeric_limits<double>::infinity()) {}

  /// Degenerate point interval [v, v].
  constexpr explicit Interval(double v) : lo_(v), hi_(v) {}

  /// Interval [lo, hi]; lo > hi yields the empty interval.
  constexpr Interval(double lo, double hi) : lo_(lo), hi_(hi) {}

  /// The whole real line.
  static constexpr Interval entire() {
    return {-std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
  }
  static constexpr Interval empty() { return {}; }

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  bool is_empty() const { return lo_ > hi_; }
  bool is_point() const { return lo_ == hi_; }
  /// True if either endpoint is infinite (and not empty).
  bool is_unbounded() const;

  /// Width hi - lo (0 for points, -inf... guarded: 0 for empty).
  double width() const { return is_empty() ? 0.0 : hi_ - lo_; }
  /// Midpoint, clamped to finite when one side is infinite.
  double mid() const;
  /// Maximum absolute value over the interval.
  double mag() const;
  /// Minimum absolute value over the interval (0 if it contains 0).
  double mig() const;

  bool contains(double v) const { return lo_ <= v && v <= hi_; }
  bool contains(const Interval& o) const {
    return o.is_empty() || (lo_ <= o.lo_ && o.hi_ <= hi_);
  }
  bool intersects(const Interval& o) const {
    return !is_empty() && !o.is_empty() && lo_ <= o.hi_ && o.lo_ <= hi_;
  }

  /// True when every point is strictly positive / negative.
  bool strictly_positive() const { return !is_empty() && lo_ > 0.0; }
  bool strictly_negative() const { return !is_empty() && hi_ < 0.0; }

  bool operator==(const Interval& o) const {
    return (is_empty() && o.is_empty()) || (lo_ == o.lo_ && hi_ == o.hi_);
  }

 private:
  double lo_;
  double hi_;
};

/// Next representable double below / above (outward rounding helpers).
double prev_float(double v);
double next_float(double v);

/// Widens both endpoints outward by \p ulps representable steps.
/// Used to make libm results conservative.
Interval widen(const Interval& x, int ulps = 2);

// --- set operations ---------------------------------------------------

Interval intersect(const Interval& a, const Interval& b);
/// Interval hull (smallest interval containing both).
Interval hull(const Interval& a, const Interval& b);

// --- arithmetic (all outward rounded) ----------------------------------

Interval operator+(const Interval& a, const Interval& b);
Interval operator-(const Interval& a, const Interval& b);
Interval operator-(const Interval& a);
Interval operator*(const Interval& a, const Interval& b);
/// Division. If b contains 0 the result may be entire() (we do not split
/// into two disjoint rays; the ICP layer handles the precision loss).
Interval operator/(const Interval& a, const Interval& b);

Interval operator+(const Interval& a, double b);
Interval operator+(double a, const Interval& b);
Interval operator-(const Interval& a, double b);
Interval operator-(double a, const Interval& b);
Interval operator*(const Interval& a, double b);
Interval operator*(double a, const Interval& b);
Interval operator/(const Interval& a, double b);

// --- elementary functions ----------------------------------------------

Interval sqr(const Interval& x);
Interval sqrt(const Interval& x);   ///< intersected with [0, inf)
Interval exp(const Interval& x);
Interval log(const Interval& x);    ///< intersected with domain (0, inf)
Interval pow(const Interval& x, int n);
Interval abs(const Interval& x);
Interval min(const Interval& a, const Interval& b);
Interval max(const Interval& a, const Interval& b);

Interval sin(const Interval& x);
Interval cos(const Interval& x);
Interval tan(const Interval& x);
Interval atan(const Interval& x);
/// Principal arcsine; input clipped to [-1,1]. Range [-pi/2, pi/2].
Interval asin(const Interval& x);
/// Principal arccosine; input clipped to [-1,1]. Range [0, pi].
Interval acos(const Interval& x);
/// Monotone sigmoid 1/(1+e^{-x}), range (0,1).
Interval sigmoid(const Interval& x);
/// Monotone tanh, range (-1,1). This is MATLAB's `tansig`.
Interval tanh(const Interval& x);
/// Inverse of tanh on (-1,1); inputs outside are clipped to the domain.
Interval atanh(const Interval& x);
/// ReLU max(x, 0).
Interval relu(const Interval& x);

/// Real n-th root, n ≥ 1. For even n the domain is clipped to [0, inf)
/// and the result is the non-negative root; for odd n the root is
/// sign-preserving (defined on all reals).
Interval nth_root(const Interval& x, int n);

/// Inverse of the logistic sigmoid: log(x / (1-x)) on (0, 1).
/// Inputs are clipped to [0, 1]; endpoints map to ∓inf.
Interval logit(const Interval& x);

std::ostream& operator<<(std::ostream& os, const Interval& x);

}  // namespace bcert::interval
