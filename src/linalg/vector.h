#pragma once
/// \file vector.h
/// \brief Dense real-valued vector used throughout the library.
///
/// The verification pipeline is small-and-dense (state dimension of the
/// case study is 2, LP tableaus are a few hundred columns, CMA-ES
/// covariances reach a few thousand), so a simple contiguous
/// `std::vector<double>` wrapper with value semantics is the right tool.

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <vector>

/// \namespace bcert
/// \brief Barrier-certificate safety verification toolkit — a C++
/// reproduction and extension of Tuncali et al., DAC 2018.

/// \namespace bcert::linalg
/// \brief Dense linear algebra: vectors, matrices, factorizations, and
/// the allocation-free / raw-pointer kernels the hot loops run on.
namespace bcert::linalg {

/// Dense column vector of doubles with value semantics.
class Vector {
 public:
  /// Creates an empty (size-0) vector.
  Vector() = default;

  /// Creates a vector of \p n zeros.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}

  /// Creates a vector of \p n copies of \p value.
  Vector(std::size_t n, double value) : data_(n, value) {}

  /// Creates a vector from an explicit element list.
  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Wraps an existing buffer (moved in).
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  /// Number of elements.
  std::size_t size() const { return data_.size(); }
  /// True when size() == 0.
  bool empty() const { return data_.empty(); }

  /// Unchecked element access.
  double& operator[](std::size_t i) { return data_[i]; }
  /// Unchecked element access (const).
  double operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t i) { return data_.at(i); }
  /// Bounds-checked access (const); throws std::out_of_range.
  double at(std::size_t i) const { return data_.at(i); }

  /// Pointer to the contiguous element storage.
  double* data() { return data_.data(); }
  /// Pointer to the contiguous element storage (const).
  const double* data() const { return data_.data(); }

  /// Iterator to the first element.
  auto begin() { return data_.begin(); }
  /// Iterator past the last element.
  auto end() { return data_.end(); }
  /// Const iterator to the first element.
  auto begin() const { return data_.begin(); }
  /// Const iterator past the last element.
  auto end() const { return data_.end(); }

  /// The underlying std::vector (read-only view).
  const std::vector<double>& raw() const { return data_; }

  /// Element-wise sum; dimensions must match (throws otherwise).
  Vector& operator+=(const Vector& rhs);
  /// Element-wise difference; dimensions must match (throws otherwise).
  Vector& operator-=(const Vector& rhs);
  /// Scales every element by \p s.
  Vector& operator*=(double s);
  /// Divides every element by \p s.
  Vector& operator/=(double s);

  /// Euclidean (L2) norm.
  double norm() const;
  /// Maximum absolute entry; 0 for the empty vector.
  double norm_inf() const;
  /// Sum of entries.
  double sum() const;

  /// Appends an element (used by constraint builders).
  void push_back(double v) { data_.push_back(v); }

  /// Resizes, zero-filling any new entries.
  void resize(std::size_t n) { data_.resize(n, 0.0); }

  /// Sets every entry to \p value.
  void fill(double value);

  /// Exact element-wise equality (sizes must match too).
  bool operator==(const Vector& rhs) const { return data_ == rhs.data_; }

 private:
  std::vector<double> data_;
};

/// Element-wise sum; dimensions must match.
Vector operator+(Vector lhs, const Vector& rhs);
/// Element-wise difference; dimensions must match.
Vector operator-(Vector lhs, const Vector& rhs);
/// Scales \p lhs by \p s.
Vector operator*(Vector lhs, double s);
/// Scales \p rhs by \p s.
Vector operator*(double s, Vector rhs);
/// Divides \p lhs by \p s element-wise.
Vector operator/(Vector lhs, double s);
/// Element-wise negation.
Vector operator-(Vector v);

// --- in-place kernels -------------------------------------------------------
// Allocation-free building blocks for the hot simulation loops. All of
// them tolerate `out` arriving with the wrong size (it is resized once);
// after warm-up no kernel allocates.

/// y += a·x (dimensions must match; throws std::invalid_argument).
void axpy(double a, const Vector& x, Vector& y);

/// out = x + a·y. `out` may not alias x or y.
void scale_add(Vector& out, const Vector& x, double a, const Vector& y);

/// out = x, reusing out's buffer when capacity allows.
void copy_into(const Vector& x, Vector& out);

/// Dot product; dimensions must match (throws std::invalid_argument).
double dot(const Vector& a, const Vector& b);

/// Element-wise product; dimensions must match.
Vector hadamard(const Vector& a, const Vector& b);

// --- raw-pointer kernels ----------------------------------------------------
// The LP tableau and other flat row-major hot paths operate on raw
// 64-byte-aligned rows rather than Vector objects. These kernels are the
// shared implementation layer: element-wise (never reassociating a
// reduction), with branchless two-lane SSE2 fast paths on x86-64 that
// produce bit-identical results to the scalar loops. Preconditions: the
// ranges [x, x+n) and [y, y+n) are valid and (where both appear) do not
// alias; no kernel allocates.

/// y[i] += a·x[i] for i in [0, n).
void axpy(std::size_t n, double a, const double* x, double* y);

/// x[i] /= d for i in [0, n). \p d must be nonzero (not checked); kept
/// as a true division so callers that depend on IEEE division semantics
/// (e.g. simplex pivot-row normalization) stay bit-faithful to the
/// scalar reference implementation.
void scale_divide(std::size_t n, double d, double* x);

/// Strictly sequential dot product of x[0..n) and y[0..n). Deliberately
/// NOT vectorized: a multi-lane reduction reassociates the sum, and the
/// simulation pipeline's bit-for-bit determinism contract (see
/// zero_alloc_sim_test) relies on scalar accumulation order.
double dot(std::size_t n, const double* x, const double* y);

/// Deleter for 64-byte-aligned double arrays (see aligned_doubles()).
struct AlignedDeleter {
  /// Releases memory obtained from aligned_doubles().
  void operator()(double* p) const noexcept;
};

/// Owning handle to a 64-byte-aligned double array.
using AlignedDoubles = std::unique_ptr<double[], AlignedDeleter>;

/// Allocates a zero-filled array of \p n doubles whose base address is
/// 64-byte aligned (one cache line / one AVX-512 lane), so row-major
/// matrices with a stride that is a multiple of 8 doubles keep every row
/// aligned. Postcondition: all n entries are 0.0.
AlignedDoubles aligned_doubles(std::size_t n);

/// Streams "[v0, v1, ...]" to \p os.
std::ostream& operator<<(std::ostream& os, const Vector& v);

}  // namespace bcert::linalg
