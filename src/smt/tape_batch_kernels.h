#pragma once
/// \file tape_batch_kernels.h
/// \brief Internal lane-kernel table for the batched tape sweeps.
///
/// A batch register slot holds `lanes` interleaved [lo, hi] interval
/// pairs (one per box in the batch). The hot instructions of NN-derived
/// conjunctions — forward addition and its two backward projection
/// legs — are dispatched through this table so the same sweep code can
/// run the portable scalar twins, the per-lane SSE2 kernels, or the
/// two-interval AVX2 kernels (compiled in their own translation unit
/// with -mavx2 and selected at runtime).
///
/// Every implementation of a kernel MUST be bit-for-bit identical on
/// every lane — the batch differential fuzz tests compare all available
/// tiers against the scalar tape. Not a public API.

#include <cstddef>
#include <cstdint>

namespace bcert::smt::bkern {

/// Kernels over interleaved [lo, hi] arrays of \p lanes intervals.
/// Null pointers mean "no specialized kernel — use the generic per-lane
/// operation" (the non-SSE2 build, where the scalar tape itself runs the
/// generic path for kAdd).
struct LaneKernels {
  /// dst[l] = a[l] + b[l], canonical empty when either operand is empty
  /// (bit-identical to interval::operator+).
  void (*forward_add)(double* dst, const double* a, const double* b,
                      std::size_t lanes);
  /// One kAdd projection leg: t[l] ∩= outward(r[l] − swap(s[l])).
  /// Sets empty[l] = 1 where the refined target became empty (never
  /// clears a flag). Bit-identical to tkern::refine_sub per lane.
  void (*refine_sub)(double* t, const double* r, const double* s,
                     std::uint8_t* empty, std::size_t lanes);

  // The remaining hot forward lanes are branchy (empty / exact-zero
  // pre-checks, division's sign cases), so their kernels stay
  // interval-at-a-time and take the lane mask instead of running
  // full-width like forward_add.

  /// dst[l] = x[l] · [w, w] on masked-in lanes (w nonzero finite).
  /// Bit-identical to tkern::mul_const.
  void (*forward_mul_const)(double* dst, const double* x, double w,
                            const std::uint8_t* mask, std::size_t lanes);
  /// dst[l] = a[l] · b[l] on masked-in lanes (interval::operator*).
  void (*forward_mul)(double* dst, const double* a, const double* b,
                      const std::uint8_t* mask, std::size_t lanes);
  /// dst[l] = a[l] / b[l] on masked-in lanes (interval::operator/).
  void (*forward_div)(double* dst, const double* a, const double* b,
                      const std::uint8_t* mask, std::size_t lanes);
};

/// AVX2 two-interval kernel table; null when this build carries no AVX2
/// translation unit. Callers must still check CPU support at runtime.
const LaneKernels* avx2_kernels();

}  // namespace bcert::smt::bkern
