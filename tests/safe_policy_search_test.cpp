// Tests for the CEGIS safe-policy-search loop (the paper's §5 future
// work). Full convergence is exercised by examples/safe_policy_search
// (minutes); here we verify the loop mechanics with small budgets.
#include <gtest/gtest.h>

#include "src/dubins/safe_policy_search.h"

namespace bcert::dubins {
namespace {

constexpr double kPi = 3.14159265358979323846;

SafePolicySearchOptions tiny_options() {
  SafePolicySearchOptions opts;
  opts.max_rounds = 2;
  opts.max_new_offsets = 2;
  opts.train.hidden_neurons = 6;
  opts.train.iterations = 8;
  opts.train.population = 16;
  opts.train.sim.velocity = 1.0;
  opts.train.sim.dt = 0.2;
  opts.train.sim.steps = 120;
  opts.train.weights.angle = 1e3;
  opts.train.start_offsets = {{0.0, 0.0}};
  opts.verify.max_candidate_iterations = 2;
  opts.verify.icp.time_limit_s = 20.0;
  return opts;
}

PiecewiseLinearPath test_path() {
  return PiecewiseLinearPath({{0.0, 0.0}, {12.0, 8.0}, {24.0, 10.0}});
}

TEST(SafePolicySearch, RunsAllRoundsAndReports) {
  const SafePolicySearchOptions opts = tiny_options();
  const core::Rect x0{{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
  const core::Rect safe{{-5.0, -(kPi / 2.0 - 0.01)}, {5.0, kPi / 2.0 - 0.01}};
  const SafePolicySearchResult r =
      safe_policy_search(test_path(), x0, safe, opts);
  ASSERT_FALSE(r.rounds.empty());
  EXPECT_LE(r.rounds.size(), static_cast<std::size_t>(opts.max_rounds));
  // Round indices are sequential and each carries a cost.
  for (std::size_t i = 0; i < r.rounds.size(); ++i) {
    EXPECT_EQ(r.rounds[i].round, static_cast<int>(i));
    EXPECT_GT(r.rounds[i].train_cost, 0.0);
  }
  // The returned controller has the configured shape.
  EXPECT_EQ(r.controller.num_params(),
            4 * opts.train.hidden_neurons + 1);
  // Consistency between the summary flag and the final verification.
  EXPECT_EQ(r.safe(), r.verification.safe());
}

TEST(SafePolicySearch, StopsEarlyWhenAlreadySafe) {
  // Seed the training with the full verification offsets so round 0
  // usually succeeds — the loop must then stop immediately.
  SafePolicySearchOptions opts = tiny_options();
  opts.max_rounds = 3;
  opts.train.iterations = 30;
  opts.train.population = 60;
  opts.train.hidden_neurons = 8;
  opts.train.sim.steps = 400;
  opts.train.sim.dt = 0.1;
  opts.train.start_offsets = verification_offsets();
  opts.verify.max_candidate_iterations = 8;
  const core::Rect x0{{-1.0, -kPi / 16.0}, {1.0, kPi / 16.0}};
  const core::Rect safe{{-5.0, -(kPi / 2.0 - 0.01)}, {5.0, kPi / 2.0 - 0.01}};
  const SafePolicySearchResult r =
      safe_policy_search(test_path(), x0, safe, opts);
  if (r.safe()) {
    EXPECT_EQ(r.rounds.size(), 1u);  // no wasted rounds after success
  }
}

}  // namespace
}  // namespace bcert::dubins
